//! Reachability analysis: expanding the timed state graph.
//!
//! Discrete-time GTPN semantics, one tick per state transition:
//!
//! 1. **Completions** — deterministic firings whose countdown reaches zero
//!    deposit their output tokens; each memoryless (geometric) firing
//!    completes independently with its probability, branching the
//!    successor distribution.
//! 2. **Zero-time activity** — enabled immediate transitions fire (highest
//!    priority class first, conflicts resolved probabilistically by
//!    weight), then enabled timed transitions *start* (consuming their
//!    input tokens), also racing by weight — this reproduces the
//!    random-order bus service of the \[VeHo86\] models. The activity repeats
//!    until the state is quiescent ("settled").
//!
//! Every state in the graph is settled, so each edge represents exactly one
//! time unit and the embedded Markov chain's stationary distribution *is*
//! the time-average distribution.

use std::cell::RefCell;

use snoop_numeric::exec::{par_map, ExecOptions};

use crate::arena::StateArena;
use crate::marking::{ActiveFiring, Remaining, TimedState};
use crate::net::{Firing, Net};
use crate::GtpnError;

/// Budgets for the expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachabilityOptions {
    /// Maximum number of distinct states before giving up.
    pub max_states: usize,
    /// Maximum tokens allowed in any single place (unboundedness guard).
    pub token_bound: u32,
    /// Probability below which a branch is discarded (and the remaining
    /// mass renormalized).
    pub probability_floor: f64,
    /// Maximum zero-time firings along one settling path (immediate-cycle
    /// livelock guard).
    pub max_zero_time_firings: usize,
    /// Worker threads for the frontier expansion (`0` = auto via
    /// [`ExecOptions`], `1` = serial). The expanded graph is bit-identical
    /// for every thread count; see [`explore`].
    pub threads: usize,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_states: 200_000,
            token_bound: 4096,
            probability_floor: 1e-12,
            max_zero_time_firings: 10_000,
            threads: 1,
        }
    }
}

/// The expanded state graph with edge probabilities and per-state expected
/// firing counts.
#[derive(Debug, Clone, PartialEq)]
pub struct StateGraph {
    /// All settled states.
    pub states: Vec<TimedState>,
    /// `edges[s]` = successor distribution of state `s` (probabilities sum
    /// to 1).
    pub edges: Vec<Vec<(usize, f64)>>,
    /// `firing_rates[s][t]` = expected number of firings of transition `t`
    /// during one tick taken from state `s` (completions for timed
    /// transitions, fires for immediate ones).
    pub firing_rates: Vec<Vec<f64>>,
    /// Index of the initial settled state... states reached by settling the
    /// initial marking, with their probabilities.
    pub initial: Vec<(usize, f64)>,
}

impl StateGraph {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the graph is empty (never true for a successful expansion).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Frontier size below which a wave is stepped inline: spawning workers
/// for a handful of states costs more than the steps themselves.
const PARALLEL_WAVE_MIN: usize = 16;

/// Expands the reachable timed state graph of `net`.
///
/// The expansion is breadth-first in *waves*: every state of the current
/// frontier is stepped (a pure function of the net), then the successors
/// are interned sequentially in frontier order. Because interning order is
/// exactly the serial visit order, the resulting graph — state IDs, edges,
/// firing rates, and any budget error — is bit-identical for every value
/// of [`ReachabilityOptions::threads`]; only wall-clock time changes.
///
/// # Errors
///
/// Returns [`GtpnError::StateSpaceExplosion`], [`GtpnError::UnboundedPlace`]
/// or [`GtpnError::ImmediateLivelock`] when a budget is violated.
pub fn explore(net: &Net, options: &ReachabilityOptions) -> Result<StateGraph, GtpnError> {
    // Observational only: the probe registry is write-only from here, so
    // metrics collection cannot change visit order or state IDs.
    let _probe_span = snoop_numeric::probe::span("gtpn_reachability");
    let mut explorer =
        Explorer { net, options, arena: StateArena::new(net.initial_marking().len()) };

    // Settle the initial marking (zero-time activity only; firing counts
    // during the transient settle are not attributed to any state).
    let mut initial_counts = vec![0.0; net.transitions().len()];
    let mut settled = Vec::new();
    let mut settle_work = Vec::new();
    explorer.settle(
        net.initial_marking(),
        Vec::new(),
        1.0,
        0,
        &mut initial_counts,
        &mut settled,
        &mut settle_work,
    )?;
    let initial: Vec<(usize, f64)> = {
        let mut acc: Vec<(usize, f64)> = Vec::new();
        for (state, prob) in settled {
            let id = explorer.intern(&state)?;
            match acc.iter_mut().find(|(s, _)| *s == id) {
                Some((_, p)) => *p += prob,
                None => acc.push((id, prob)),
            }
        }
        acc
    };

    // Breadth-first wave expansion: step the whole frontier (in parallel
    // when it is wide enough), then intern successors in frontier order.
    // `step` reads only the net, the options and the stepped state's
    // arena slices, never the intern index, so the intern call sequence —
    // and with it every state ID — matches the one-state-at-a-time serial
    // expansion exactly.
    let exec = ExecOptions::with_threads(options.threads);
    let mut edges: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut firing_rates: Vec<Vec<f64>> = Vec::new();
    let mut next_unexpanded = 0usize;
    while next_unexpanded < explorer.arena.len() {
        let wave_end = explorer.arena.len();
        let wave: Vec<usize> = (next_unexpanded..wave_end).collect();
        snoop_numeric::probe::counter_add("gtpn.reachability_waves", 1);
        snoop_numeric::probe::record("gtpn.wave_size", wave.len() as f64);
        let outcomes: Vec<Result<StepOutcome, GtpnError>> =
            if wave.len() >= PARALLEL_WAVE_MIN && exec.resolved_threads() > 1 {
                par_map(&wave, &exec, |&id| {
                    explorer.step(explorer.arena.marking(id), explorer.arena.active(id))
                })
            } else {
                wave.iter()
                    .map(|&id| {
                        explorer.step(explorer.arena.marking(id), explorer.arena.active(id))
                    })
                    .collect()
            };
        for outcome in outcomes {
            let (dist, counts) = outcome?;
            let mut row: Vec<(usize, f64)> = Vec::new();
            for (s, p) in dist {
                let id = explorer.intern(&s)?;
                match row.iter_mut().find(|(t, _)| *t == id) {
                    Some((_, q)) => *q += p,
                    None => row.push((id, p)),
                }
            }
            // Renormalize (the probability floor may have trimmed mass).
            let total: f64 = row.iter().map(|(_, p)| p).sum();
            if total > 0.0 {
                for (_, p) in &mut row {
                    *p /= total;
                }
            }
            edges.push(row);
            firing_rates.push(counts);
        }
        next_unexpanded = wave_end;
    }

    snoop_numeric::probe::counter_add("gtpn.states", explorer.arena.len() as u64);
    Ok(StateGraph { states: explorer.arena.into_states(), edges, firing_rates, initial })
}

/// Successor distribution and expected per-transition firing counts of
/// one tick.
type StepOutcome = (Vec<(TimedState, f64)>, Vec<f64>);

/// A queued zero-time settling branch: marking, active firings, branch
/// probability, zero-time firings so far.
type SettleItem = (Vec<u32>, Vec<ActiveFiring>, f64, usize);

/// Per-thread scratch for [`Explorer::step`]: the classification lists
/// and the geometric-branch partitions are reused across every state a
/// worker steps (pool threads are persistent, so these warm up once per
/// process), replacing the per-successor `Vec` clones the recursion used
/// to make.
#[derive(Default)]
struct StepScratch {
    advanced: Vec<ActiveFiring>,
    det_completions: Vec<usize>,
    geometrics: Vec<usize>,
    completed_geo: Vec<usize>,
    surviving_geo: Vec<usize>,
    settle_work: Vec<SettleItem>,
}

thread_local! {
    static STEP_SCRATCH: RefCell<StepScratch> = RefCell::new(StepScratch::default());
}

struct Explorer<'a> {
    net: &'a Net,
    options: &'a ReachabilityOptions,
    arena: StateArena,
}

impl Explorer<'_> {
    /// Most leaves one state's successor distribution may hold before the
    /// expansion is declared an explosion. Pre-dedup leaves are allowed a
    /// generous multiple of `max_states` because weight races reach the
    /// same settled state along many orderings.
    fn successor_budget(&self) -> usize {
        self.options.max_states.saturating_mul(8)
    }

    fn intern(&mut self, state: &TimedState) -> Result<usize, GtpnError> {
        let (hash, found) = self.arena.lookup(state);
        if let Some(id) = found {
            return Ok(id);
        }
        if self.arena.len() >= self.options.max_states {
            return Err(GtpnError::StateSpaceExplosion { limit: self.options.max_states });
        }
        Ok(self.arena.insert(hash, state))
    }

    /// One tick from a settled state (given as its marking and active
    /// slices): returns the successor distribution and the expected
    /// firing counts.
    fn step(&self, marking: &[u32], active: &[ActiveFiring]) -> Result<StepOutcome, GtpnError> {
        let mut counts = vec![0.0; self.net.transitions().len()];
        let mut out = Vec::new();

        STEP_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.advanced.clear();
            scratch.det_completions.clear();
            scratch.geometrics.clear();
            scratch.completed_geo.clear();
            scratch.surviving_geo.clear();

            // Split active firings into deterministic (advance their
            // clocks) and geometric (branch over completion subsets).
            for f in active {
                match f.remaining {
                    Remaining::Ticks(1) => scratch.det_completions.push(f.transition),
                    Remaining::Ticks(k) => scratch.advanced.push(ActiveFiring {
                        transition: f.transition,
                        remaining: Remaining::Ticks(k - 1),
                    }),
                    Remaining::Memoryless => scratch.geometrics.push(f.transition),
                }
            }

            self.branch_geometrics(
                marking,
                &scratch.advanced,
                &scratch.det_completions,
                &scratch.geometrics,
                0,
                &mut scratch.completed_geo,
                &mut scratch.surviving_geo,
                1.0,
                &mut counts,
                &mut out,
                &mut scratch.settle_work,
            )
        })?;
        Ok((out, counts))
    }

    /// Recursively branches over which memoryless firings complete this
    /// tick, then applies completions and settles. `completed_geo` and
    /// `surviving_geo` partition the first `i` entries of `geometrics`
    /// (kept as separate lists so several concurrent firings of the same
    /// transition are counted individually); both are push/pop
    /// backtracking buffers — each recursion level appends its choice
    /// before descending and removes it after, so no per-branch clones
    /// are made.
    #[allow(clippy::too_many_arguments)]
    fn branch_geometrics(
        &self,
        marking: &[u32],
        advanced: &[ActiveFiring],
        det_completions: &[usize],
        geometrics: &[usize],
        i: usize,
        completed_geo: &mut Vec<usize>,
        surviving_geo: &mut Vec<usize>,
        prob: f64,
        counts: &mut [f64],
        out: &mut Vec<(TimedState, f64)>,
        settle_work: &mut Vec<SettleItem>,
    ) -> Result<(), GtpnError> {
        if prob < self.options.probability_floor {
            return Ok(());
        }
        if i < geometrics.len() {
            let t = geometrics[i];
            let p = match self.net.transitions()[t].firing {
                Firing::Geometric(p) => p,
                _ => unreachable!("memoryless firing of non-geometric transition"),
            };
            // Branch: completes.
            completed_geo.push(t);
            self.branch_geometrics(
                marking,
                advanced,
                det_completions,
                geometrics,
                i + 1,
                completed_geo,
                surviving_geo,
                prob * p,
                counts,
                out,
                settle_work,
            )?;
            completed_geo.pop();
            // Branch: keeps firing.
            if p < 1.0 {
                surviving_geo.push(t);
                self.branch_geometrics(
                    marking,
                    advanced,
                    det_completions,
                    geometrics,
                    i + 1,
                    completed_geo,
                    surviving_geo,
                    prob * (1.0 - p),
                    counts,
                    out,
                    settle_work,
                )?;
                surviving_geo.pop();
            }
            return Ok(());
        }

        // All geometric outcomes decided: build the post-tick marking.
        let mut marking = marking.to_vec();
        let mut active = Vec::with_capacity(advanced.len() + surviving_geo.len());
        active.extend_from_slice(advanced);
        for &t in surviving_geo.iter() {
            active.push(ActiveFiring { transition: t, remaining: Remaining::Memoryless });
        }
        for &t in det_completions.iter().chain(completed_geo.iter()) {
            counts[t] += prob;
            for &(p, k) in &self.net.transitions()[t].outputs {
                marking[p.index()] = marking[p.index()].saturating_add(k);
                if marking[p.index()] > self.options.token_bound {
                    return Err(GtpnError::UnboundedPlace { place: p.index() });
                }
            }
        }

        self.settle(marking, active, prob, 0, counts, out, settle_work)
    }

    /// Zero-time activity: immediate firings (priority then weight race),
    /// then timed starts (weight race), until quiescent. Iterative with an
    /// explicit worklist — livelocked nets would otherwise recurse until
    /// the stack overflows before the firing budget triggers. The worklist
    /// itself (`work`) is caller-provided scratch so its allocation is
    /// reused across every leaf of a step; it is always drained (or
    /// abandoned on error) before returning.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        marking: Vec<u32>,
        active: Vec<ActiveFiring>,
        prob: f64,
        zero_time_firings: usize,
        counts: &mut [f64],
        out: &mut Vec<(TimedState, f64)>,
        work: &mut Vec<SettleItem>,
    ) -> Result<(), GtpnError> {
        work.clear();
        work.push((marking, active, prob, zero_time_firings));
        let mut candidates: Vec<usize> = Vec::new();

        while let Some((marking, active, prob, fired)) = work.pop() {
            if prob < self.options.probability_floor {
                continue;
            }
            if fired > self.options.max_zero_time_firings {
                return Err(GtpnError::ImmediateLivelock);
            }

            // Highest-priority enabled immediate class.
            let mut best_priority = None;
            for t in self.net.transitions() {
                if matches!(t.firing, Firing::Immediate) && t.enabled(&marking) {
                    best_priority =
                        Some(best_priority.map_or(t.priority, |b: u32| b.max(t.priority)));
                }
            }
            candidates.clear();
            if let Some(prio) = best_priority {
                candidates.extend(
                    self.net
                        .transitions()
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| {
                            matches!(t.firing, Firing::Immediate)
                                && t.priority == prio
                                && t.enabled(&marking)
                        })
                        .map(|(i, _)| i),
                );
            } else {
                // No immediates: race the enabled timed transitions to start.
                candidates.extend(
                    self.net
                        .transitions()
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| {
                            !matches!(t.firing, Firing::Immediate) && t.enabled(&marking)
                        })
                        .map(|(i, _)| i),
                );
            }

            if candidates.is_empty() {
                // Guard the successor accumulator itself: the race
                // enumeration below is factorial in the number of enabled
                // transitions, so a large system can build a distribution
                // of billions of (mostly duplicate) leaves — exhausting
                // memory long before `intern` ever sees a state and checks
                // `max_states`. A distribution wider than the entire
                // permitted state space cannot contain new information
                // (post-dedup it collapses to at most `max_states`
                // states), so it is reported as the same explosion.
                if out.len() >= self.successor_budget() {
                    return Err(GtpnError::StateSpaceExplosion {
                        limit: self.options.max_states,
                    });
                }
                out.push((TimedState::new(marking, active), prob));
                continue;
            }

            let total_weight: f64 =
                candidates.iter().map(|&i| self.net.transitions()[i].weight).sum();
            // All but the last branch clone the pre-fire marking/active;
            // the last one takes them by move (push order — and therefore
            // the settle visit order — is unchanged).
            let (&last, rest) = candidates.split_last().expect("candidates is non-empty");
            for &ti in rest {
                let branch_prob = prob * self.net.transitions()[ti].weight / total_weight;
                let mut m = marking.clone();
                let mut a = active.clone();
                self.fire_candidate(ti, branch_prob, &mut m, &mut a, counts)?;
                work.push((m, a, branch_prob, fired + 1));
            }
            let branch_prob = prob * self.net.transitions()[last].weight / total_weight;
            let mut m = marking;
            let mut a = active;
            self.fire_candidate(last, branch_prob, &mut m, &mut a, counts)?;
            work.push((m, a, branch_prob, fired + 1));
        }
        Ok(())
    }

    /// Applies one zero-time candidate firing: consumes its input tokens,
    /// then either deposits outputs (immediate) or starts the timer /
    /// memoryless firing (timed).
    fn fire_candidate(
        &self,
        ti: usize,
        branch_prob: f64,
        marking: &mut [u32],
        active: &mut Vec<ActiveFiring>,
        counts: &mut [f64],
    ) -> Result<(), GtpnError> {
        let t = &self.net.transitions()[ti];
        for &(p, k) in &t.inputs {
            marking[p.index()] -= k;
        }
        match t.firing {
            Firing::Immediate => {
                counts[ti] += branch_prob;
                for &(p, k) in &t.outputs {
                    marking[p.index()] = marking[p.index()].saturating_add(k);
                    if marking[p.index()] > self.options.token_bound {
                        return Err(GtpnError::UnboundedPlace { place: p.index() });
                    }
                }
            }
            Firing::Deterministic(d) => {
                active.push(ActiveFiring { transition: ti, remaining: Remaining::Ticks(d) });
            }
            Firing::Geometric(_) => {
                active.push(ActiveFiring { transition: ti, remaining: Remaining::Memoryless });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Firing, NetBuilder};

    #[test]
    fn deterministic_cycle_has_period_states() {
        let mut b = NetBuilder::new();
        let w = b.place("working", 1);
        let r = b.place("resting", 0);
        b.timed("finish", Firing::Deterministic(2), &[(w, 1)], &[(r, 1)]);
        b.timed("restart", Firing::Deterministic(1), &[(r, 1)], &[(w, 1)]);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        assert_eq!(g.len(), 3);
        // Every edge distribution is a single successor with probability 1.
        for row in &g.edges {
            assert_eq!(row.len(), 1);
            assert!((row[0].1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn geometric_branches_two_ways() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(0.25), &[(a, 1)], &[(z, 1)]);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        // States: firing-in-progress, and absorbed (token in z, quiescent).
        assert_eq!(g.len(), 2);
        let firing_state = &g.states[g.initial[0].0];
        assert_eq!(firing_state.active.len(), 1);
        let row = &g.edges[g.initial[0].0];
        assert_eq!(row.len(), 2);
        let p_complete: f64 =
            row.iter().find(|(s, _)| g.states[*s].marking[1] == 1).map(|(_, p)| *p).unwrap();
        assert!((p_complete - 0.25).abs() < 1e-12);
    }

    #[test]
    fn immediate_race_splits_by_weight() {
        let mut b = NetBuilder::new();
        let src = b.place("src", 1);
        let left = b.place("left", 0);
        let right = b.place("right", 0);
        b.immediate_weighted("go-left", 1.0, 0, &[(src, 1)], &[(left, 1)]);
        b.immediate_weighted("go-right", 3.0, 0, &[(src, 1)], &[(right, 1)]);
        // Tick timers so the settled states are distinguishable and live.
        b.timed("l", Firing::Deterministic(1), &[(left, 1)], &[(src, 1)]);
        b.timed("r", Firing::Deterministic(1), &[(right, 1)], &[(src, 1)]);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        // Initial settle: src → (left | right) → timer starts: two states.
        assert_eq!(g.initial.len(), 2);
        let probs: Vec<f64> = g.initial.iter().map(|&(_, p)| p).collect();
        let min = probs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = probs.iter().cloned().fold(0.0, f64::max);
        assert!((min - 0.25).abs() < 1e-12);
        assert!((max - 0.75).abs() < 1e-12);
    }

    #[test]
    fn priority_beats_weight() {
        let mut b = NetBuilder::new();
        let src = b.place("src", 1);
        let hi = b.place("hi", 0);
        let lo = b.place("lo", 0);
        b.immediate_weighted("high", 0.001, 5, &[(src, 1)], &[(hi, 1)]);
        b.immediate_weighted("low", 1000.0, 0, &[(src, 1)], &[(lo, 1)]);
        b.timed("recycle", Firing::Deterministic(1), &[(hi, 1)], &[(src, 1)]);
        b.timed("recycle2", Firing::Deterministic(1), &[(lo, 1)], &[(src, 1)]);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        // Only the high-priority branch is ever taken.
        assert_eq!(g.initial.len(), 1);
        for s in &g.states {
            assert_eq!(s.marking[2], 0, "low-priority output reached: {s:?}");
        }
    }

    #[test]
    fn dead_state_self_loops() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("end", Firing::Deterministic(1), &[(a, 1)], &[(z, 1)]);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        // The absorbed state (token in z) has itself as its only successor.
        let dead = g
            .states
            .iter()
            .position(|s| s.marking[1] == 1 && s.active.is_empty())
            .expect("absorbed state exists");
        assert_eq!(g.edges[dead], vec![(dead, 1.0)]);
    }

    #[test]
    fn immediate_livelock_is_detected() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let c = b.place("b", 0);
        b.immediate("ping", &[(a, 1)], &[(c, 1)]);
        b.immediate("pong", &[(c, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let err = explore(&net, &ReachabilityOptions::default()).unwrap_err();
        assert_eq!(err, GtpnError::ImmediateLivelock);
    }

    #[test]
    fn state_budget_is_enforced() {
        // A counter that keeps growing a place: unbounded, but the token
        // bound triggers first unless states explode; use a tiny budget.
        let mut b = NetBuilder::new();
        let clock = b.place("clock", 1);
        let acc = b.place("acc", 0);
        b.timed("tick", Firing::Deterministic(1), &[(clock, 1)], &[(clock, 1), (acc, 1)]);
        let net = b.build().unwrap();
        let err = explore(
            &net,
            &ReachabilityOptions { max_states: 10, ..ReachabilityOptions::default() },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GtpnError::StateSpaceExplosion { limit: 10 } | GtpnError::UnboundedPlace { .. }
        ));
    }

    #[test]
    fn token_bound_detects_unbounded_place() {
        let mut b = NetBuilder::new();
        let clock = b.place("clock", 1);
        let acc = b.place("acc", 0);
        b.timed("tick", Firing::Deterministic(1), &[(clock, 1)], &[(clock, 1), (acc, 1)]);
        let net = b.build().unwrap();
        let err = explore(
            &net,
            &ReachabilityOptions { token_bound: 50, ..ReachabilityOptions::default() },
        )
        .unwrap_err();
        assert_eq!(err, GtpnError::UnboundedPlace { place: 1 });
    }

    #[test]
    fn edge_probabilities_sum_to_one() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 2);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(0.3), &[(a, 1)], &[(z, 1)]);
        b.timed("back", Firing::Geometric(0.6), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        for (i, row) in g.edges.iter().enumerate() {
            let sum: f64 = row.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "state {i}: {sum}");
        }
    }
}
