//! Graphviz (DOT) export of nets and reachability graphs.

use std::fmt::Write as _;

use crate::net::{Firing, Net};
use crate::reachability::StateGraph;

/// Renders the net structure: places as circles (with initial tokens),
/// transitions as boxes (immediate = thin, timed = labeled with their
/// firing law).
pub fn net_diagram(net: &Net) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph net {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, place) in net.places().iter().enumerate() {
        let tokens = if place.initial_tokens > 0 {
            format!("\\n●×{}", place.initial_tokens)
        } else {
            String::new()
        };
        let _ = writeln!(out, "  p{i} [label=\"{}{tokens}\", shape=circle];", place.name);
    }
    for (i, t) in net.transitions().iter().enumerate() {
        let law = match t.firing {
            Firing::Immediate => format!("w={}", t.weight),
            Firing::Deterministic(d) => format!("det {d}"),
            Firing::Geometric(p) => format!("geo {p}"),
        };
        let style = if matches!(t.firing, Firing::Immediate) {
            ", height=0.1, style=filled, fillcolor=black, fontcolor=white"
        } else {
            ""
        };
        let _ = writeln!(out, "  t{i} [label=\"{}\\n{law}\", shape=box{style}];", t.name);
        for &(p, k) in &t.inputs {
            let mult = if k > 1 { format!(" [label=\"{k}\"]") } else { String::new() };
            let _ = writeln!(out, "  p{} -> t{i}{mult};", p.index());
        }
        for &(p, k) in &t.outputs {
            let mult = if k > 1 { format!(" [label=\"{k}\"]") } else { String::new() };
            let _ = writeln!(out, "  t{i} -> p{};", p.index());
            let _ = mult;
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the expanded state graph (small nets only: every timed state
/// becomes a node, every one-tick transition an edge labeled with its
/// probability).
pub fn state_graph_diagram(graph: &StateGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph states {{");
    for (i, state) in graph.states.iter().enumerate() {
        let marking: Vec<String> = state.marking.iter().map(u32::to_string).collect();
        let _ = writeln!(
            out,
            "  s{i} [label=\"[{}] +{} firing\"];",
            marking.join(","),
            state.active.len()
        );
    }
    for (s, row) in graph.edges.iter().enumerate() {
        for &(t, p) in row {
            let _ = writeln!(out, "  s{s} -> s{t} [label=\"{p:.3}\"];");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;
    use crate::reachability::{explore, ReachabilityOptions};

    fn sample_net() -> Net {
        let mut b = NetBuilder::new();
        let a = b.place("ready", 2);
        let q = b.place("queue", 0);
        b.immediate("classify", &[(a, 1)], &[(q, 1)]);
        b.timed("serve", Firing::Deterministic(3), &[(q, 2)], &[(a, 2)]);
        b.build().unwrap()
    }

    #[test]
    fn net_diagram_is_well_formed() {
        let d = net_diagram(&sample_net());
        assert!(d.starts_with("digraph"));
        assert_eq!(d.matches('{').count(), d.matches('}').count());
        assert!(d.contains("ready"));
        assert!(d.contains("det 3"));
        assert!(d.contains("●×2"));
        // Multiplicity-2 input arc is labeled.
        assert!(d.contains("[label=\"2\"]"));
    }

    #[test]
    fn state_graph_diagram_lists_all_states() {
        let net = sample_net();
        let g = explore(&net, &ReachabilityOptions::default()).unwrap();
        let d = state_graph_diagram(&g);
        for i in 0..g.len() {
            assert!(d.contains(&format!("s{i} [")), "missing state {i}");
        }
        assert!(d.contains("->"));
    }
}
