//! Transient (time-dependent) analysis.
//!
//! The steady-state pipeline in [`crate::solve`] answers the paper's
//! questions; transient analysis answers *how fast* the system gets there
//! (warm-up lengths for the simulator's measurement windows) and resolves
//! absorbing nets exactly. Because every edge of the expanded state graph
//! spans one tick, the `k`-step distribution is just `π₀ Pᵏ`.

use snoop_numeric::sparse::CsrMatrix;

use crate::chain::transition_matrix;
use crate::net::{Net, PlaceId};
use crate::reachability::{explore, ReachabilityOptions, StateGraph};
use crate::GtpnError;

/// A transient trajectory: state distributions at ticks `0..=horizon`.
#[derive(Debug, Clone)]
pub struct Trajectory {
    graph: StateGraph,
    /// `distributions[k][s]` = P(state `s` at tick `k`).
    distributions: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Number of recorded ticks (horizon + 1).
    pub fn len(&self) -> usize {
        self.distributions.len()
    }

    /// Whether the trajectory is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.distributions.is_empty()
    }

    /// The state distribution at tick `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the horizon.
    pub fn distribution(&self, k: usize) -> &[f64] {
        &self.distributions[k]
    }

    /// Expected tokens in `place` at tick `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the horizon.
    pub fn mean_tokens_at(&self, place: PlaceId, k: usize) -> f64 {
        self.graph
            .states
            .iter()
            .zip(&self.distributions[k])
            .map(|(s, &p)| p * f64::from(s.marking[place.index()]))
            .sum()
    }

    /// Expected-token time series for a place over the whole horizon.
    pub fn mean_tokens_series(&self, place: PlaceId) -> Vec<f64> {
        (0..self.len()).map(|k| self.mean_tokens_at(place, k)).collect()
    }

    /// Total-variation distance between the distributions at the last two
    /// ticks — a convergence indicator for warm-up estimation.
    pub fn final_step_distance(&self) -> f64 {
        if self.len() < 2 {
            return f64::INFINITY;
        }
        let a = &self.distributions[self.len() - 2];
        let b = &self.distributions[self.len() - 1];
        0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
    }
}

/// Expands `net` and computes its transient trajectory for `horizon`
/// ticks from the initial marking.
///
/// # Errors
///
/// Propagates exploration and matrix-assembly failures.
pub fn transient(
    net: &Net,
    horizon: usize,
    options: &ReachabilityOptions,
) -> Result<Trajectory, GtpnError> {
    let graph = explore(net, options)?;
    let p: CsrMatrix = transition_matrix(&graph)?;

    let mut current = vec![0.0; graph.len()];
    for &(s, prob) in &graph.initial {
        current[s] += prob;
    }
    let mut distributions = Vec::with_capacity(horizon + 1);
    distributions.push(current.clone());
    for _ in 0..horizon {
        current = p.vec_mul(&current)?;
        distributions.push(current.clone());
    }
    Ok(Trajectory { graph, distributions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Firing, NetBuilder};

    #[test]
    fn deterministic_pipeline_timing_is_exact() {
        // Token takes exactly 3 ticks to traverse a Deterministic(3) stage.
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("go", Firing::Deterministic(3), &[(a, 1)], &[(z, 1)]);
        let net = b.build().unwrap();
        let t = transient(&net, 5, &ReachabilityOptions::default()).unwrap();
        assert_eq!(t.mean_tokens_at(z, 0), 0.0);
        assert_eq!(t.mean_tokens_at(z, 2), 0.0);
        assert_eq!(t.mean_tokens_at(z, 3), 1.0);
        assert_eq!(t.mean_tokens_at(z, 5), 1.0);
    }

    #[test]
    fn geometric_absorption_follows_the_cdf() {
        // P(absorbed by tick k) = 1 − (1−p)^k.
        let p = 0.3;
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(p), &[(a, 1)], &[(z, 1)]);
        let net = b.build().unwrap();
        let t = transient(&net, 10, &ReachabilityOptions::default()).unwrap();
        for k in 0..=10usize {
            let expected = 1.0 - (1.0 - p).powi(k as i32);
            assert!(
                (t.mean_tokens_at(z, k) - expected).abs() < 1e-12,
                "tick {k}: {} vs {expected}",
                t.mean_tokens_at(z, k)
            );
        }
    }

    #[test]
    fn distributions_stay_normalized() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 2);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(0.4), &[(a, 1)], &[(z, 1)]);
        b.timed("back", Firing::Deterministic(2), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let t = transient(&net, 20, &ReachabilityOptions::default()).unwrap();
        for k in 0..t.len() {
            let total: f64 = t.distribution(k).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "tick {k}: {total}");
        }
    }

    #[test]
    fn trajectory_converges_toward_steady_state() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("go", Firing::Geometric(0.5), &[(a, 1)], &[(z, 1)]);
        b.timed("back", Firing::Geometric(0.25), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        let t = transient(&net, 200, &ReachabilityOptions::default()).unwrap();
        assert!(t.final_step_distance() < 1e-9);
        // Steady state: fraction of time in the `go` phase is
        // (1/0.5)/((1/0.5)+(1/0.25)) = 1/3; the `back` firing holds the
        // token 2/3 of the time.
        let series = t.mean_tokens_series(a);
        assert!(series[200] < 1e-6); // tokens always inside firings here
    }

    #[test]
    fn short_trajectory_distance_is_informative() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let z = b.place("z", 0);
        b.timed("go", Firing::Deterministic(2), &[(a, 1)], &[(z, 1)]);
        b.timed("back", Firing::Deterministic(2), &[(z, 1)], &[(a, 1)]);
        let net = b.build().unwrap();
        // A deterministic cycle never converges pointwise.
        let t = transient(&net, 9, &ReachabilityOptions::default()).unwrap();
        assert!(t.final_step_distance() > 0.5);
        let t1 = transient(&net, 0, &ReachabilityOptions::default()).unwrap();
        assert!(t1.final_step_distance().is_infinite());
    }
}
