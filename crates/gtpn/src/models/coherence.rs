//! The snooping-cache multiprocessor GTPN — the detailed comparator model.
//!
//! Structure (per processor):
//!
//! ```text
//! ready ──think (geometric, mean τ)──▶ classify
//!   classify ──[p_local]──▶ supplied
//!   classify ──[p_bc]────▶ bc-wait ──(bus, T_write)──▶ supplied
//!   classify ──[p_rr]────▶ rr-wait ──(bus, 4/8/8+4)──▶ rr-done
//!     rr-done ──[1−p_reqwb]──▶ supplied (bus released)
//!     rr-done ──[p_reqwb]───▶ wb ──(bus, 4)──▶ supplied
//!   supplied ──(T_supply = 1)──▶ ready
//! ```
//!
//! The single `bus-free` token serializes all bus transactions; enabled
//! bus transitions race with weights, giving the random-order service of
//! the \[VeHo86\] GTPN (which has the same mean waits as the MVA's FCFS —
//! paper Section 2.1). Remote-read durations use the same reconstruction
//! as the MVA inputs: cache-supplied 4 cycles, memory-supplied 8, plus 4
//! per appended block write-back.
//!
//! Deliberate simplifications relative to the full \[VeHo86\] net, chosen to
//! keep the state space within reach while preserving the contended
//! resources (documented in DESIGN.md): memory-module contention and cache
//! (snoop) interference are not modeled — the MVA solutions show both
//! contribute only fractions of a cycle for the Appendix-A workloads. The
//! discrete-event simulator (`snoop-sim`) models both, so each detailed
//! comparator covers the other's blind spot.

use snoop_workload::derived::ModelInputs;

use crate::net::{Firing, Net, NetBuilder, PlaceId, TransitionId};
use crate::reachability::ReachabilityOptions;
use crate::solve::{solve_with_options, GtpnSolution};
use crate::GtpnError;

/// The multiprocessor net plus the handles needed to extract measures.
#[derive(Debug, Clone)]
pub struct CoherenceNet {
    /// The underlying net.
    pub net: Net,
    /// Number of processors.
    pub n: usize,
    /// Mean think time τ (for the speedup formula).
    pub tau: f64,
    /// `T_supply` (for the speedup formula).
    pub t_supply: f64,
    /// Per-processor think transitions (their throughput is `1/R`).
    pub think: Vec<TransitionId>,
    /// The bus-free place (its emptiness is bus utilization).
    pub bus_free: PlaceId,
    /// All bus-holding timed transitions (their summed utilization is bus
    /// utilization).
    pub bus_transitions: Vec<TransitionId>,
    /// The bus wait places (queued requests).
    pub wait_places: Vec<PlaceId>,
}

/// Performance measures extracted from a solved coherence net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceMeasures {
    /// Mean time between memory requests (cycles).
    pub r: f64,
    /// Speedup `N·(τ + T_supply)/R`.
    pub speedup: f64,
    /// Bus utilization.
    pub bus_utilization: f64,
    /// Mean number of requests waiting for the bus (tokens in the wait
    /// places) — comparable to the MVA's `Q̄_bus` minus the request in
    /// service.
    pub mean_bus_queue: f64,
    /// Size of the expanded state space (the cost driver).
    pub states: usize,
}

/// Optional refinements of the coherence net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoherenceNetOptions {
    /// Model memory-module contention: broadcasts must additionally
    /// acquire one of the interleaved module tokens, which stays busy for
    /// `d_mem` after the bus moves on. Grows the state space; used to
    /// quantify how little the default omission costs.
    pub model_memory: bool,
}

impl CoherenceNet {
    /// Builds the net for `n` processors from derived model inputs.
    ///
    /// Durations are rounded to integer ticks; with the default timing
    /// model they already are integers (4 and 8 cycles).
    ///
    /// # Errors
    ///
    /// Propagates net-construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `tau <= 0`.
    pub fn build(inputs: &ModelInputs, n: usize) -> Result<Self, GtpnError> {
        Self::build_with_options(inputs, n, CoherenceNetOptions::default())
    }

    /// Like [`CoherenceNet::build`] with explicit refinements.
    ///
    /// # Errors
    ///
    /// Propagates net-construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `tau <= 0`.
    pub fn build_with_options(
        inputs: &ModelInputs,
        n: usize,
        options: CoherenceNetOptions,
    ) -> Result<Self, GtpnError> {
        assert!(n > 0, "need at least one processor");
        assert!(inputs.tau > 0.0, "geometric think time needs positive tau");
        let mut b = NetBuilder::new();
        let bus_free = b.place("bus-free", 1);
        // Aggregated memory modules: m interchangeable tokens (per-module
        // identity would multiply the state space for no insight at these
        // loads).
        let mem_free = if options.model_memory && inputs.bc_updates_memory {
            Some(b.place("mem-free", inputs.memory_modules))
        } else {
            None
        };
        let think_p = (1.0 / inputs.tau).min(1.0);

        // Remote-read duration split (probabilities conditional on rr).
        let frac_cs = if inputs.p_rr > 0.0 {
            inputs.csupply_weighted_mass / inputs.p_rr
        } else {
            0.0
        };
        let p_csupwb = inputs.p_csupwb_rr; // cache supply + supplier write-back
        let p_cache_only = (frac_cs - p_csupwb).max(0.0);
        let p_mem = (1.0 - frac_cs).max(0.0);
        let t_cache = 4u32;
        let t_mem = 8u32;
        let t_wb = 4u32;

        let mut think = Vec::new();
        let mut bus_transitions = Vec::new();
        let mut wait_places = Vec::new();
        for i in 0..n {
            let ready = b.place(&format!("ready-{i}"), 1);
            let classify = b.place(&format!("classify-{i}"), 0);
            let supplied = b.place(&format!("supplied-{i}"), 0);
            think.push(b.timed(
                &format!("think-{i}"),
                Firing::Geometric(think_p),
                &[(ready, 1)],
                &[(classify, 1)],
            ));

            // Classification (immediate, weights = routing probabilities).
            if inputs.p_local > 0.0 {
                b.immediate_weighted(
                    &format!("local-{i}"),
                    inputs.p_local,
                    0,
                    &[(classify, 1)],
                    &[(supplied, 1)],
                );
            }
            if inputs.p_bc > 0.0 {
                let bc_wait = b.place(&format!("bc-wait-{i}"), 0);
                wait_places.push(bc_wait);
                b.immediate_weighted(
                    &format!("bc-{i}"),
                    inputs.p_bc,
                    0,
                    &[(classify, 1)],
                    &[(bc_wait, 1)],
                );
                let t_write = (inputs.t_write.round() as u32).max(1);
                match mem_free {
                    None => {
                        bus_transitions.push(b.timed(
                            &format!("bc-serve-{i}"),
                            Firing::Deterministic(t_write),
                            &[(bc_wait, 1), (bus_free, 1)],
                            &[(bus_free, 1), (supplied, 1)],
                        ));
                    }
                    Some(mem) => {
                        // The word goes to a module, which stays busy for
                        // the rest of d_mem after the bus releases.
                        let mem_hold = b.place(&format!("mem-hold-{i}"), 0);
                        bus_transitions.push(b.timed(
                            &format!("bc-serve-{i}"),
                            Firing::Deterministic(t_write),
                            &[(bc_wait, 1), (bus_free, 1), (mem, 1)],
                            &[(bus_free, 1), (supplied, 1), (mem_hold, 1)],
                        ));
                        let tail = ((inputs.d_mem - inputs.t_write).round() as u32).max(1);
                        b.timed(
                            &format!("mem-release-{i}"),
                            Firing::Deterministic(tail),
                            &[(mem_hold, 1)],
                            &[(mem, 1)],
                        );
                    }
                }
            }
            if inputs.p_rr > 0.0 {
                let rr_wait = b.place(&format!("rr-wait-{i}"), 0);
                wait_places.push(rr_wait);
                let rr_done = b.place(&format!("rr-done-{i}"), 0);
                b.immediate_weighted(
                    &format!("rr-{i}"),
                    inputs.p_rr,
                    0,
                    &[(classify, 1)],
                    &[(rr_wait, 1)],
                );
                // Three service variants race; weights sum to 1 so inter-
                // processor bus arbitration stays fair.
                let mut add_serve = |name: &str, weight: f64, ticks: u32| {
                    if weight > 1e-12 {
                        bus_transitions.push(b.timed_weighted(
                            name,
                            weight,
                            Firing::Deterministic(ticks),
                            &[(rr_wait, 1), (bus_free, 1)],
                            &[(rr_done, 1)],
                        ));
                    }
                };
                add_serve(&format!("rr-mem-{i}"), p_mem, t_mem);
                add_serve(&format!("rr-cache-{i}"), p_cache_only, t_cache);
                add_serve(&format!("rr-cache-wb-{i}"), p_csupwb, t_cache + t_wb);

                // Release or extend with the requester's write-back.
                if inputs.p_reqwb_rr < 1.0 {
                    b.immediate_weighted(
                        &format!("release-{i}"),
                        (1.0 - inputs.p_reqwb_rr).max(1e-12),
                        0,
                        &[(rr_done, 1)],
                        &[(bus_free, 1), (supplied, 1)],
                    );
                }
                if inputs.p_reqwb_rr > 1e-12 {
                    let wb = b.place(&format!("wb-{i}"), 0);
                    b.immediate_weighted(
                        &format!("req-wb-{i}"),
                        inputs.p_reqwb_rr,
                        0,
                        &[(rr_done, 1)],
                        &[(wb, 1)],
                    );
                    bus_transitions.push(b.timed(
                        &format!("wb-serve-{i}"),
                        Firing::Deterministic(t_wb),
                        &[(wb, 1)],
                        &[(bus_free, 1), (supplied, 1)],
                    ));
                }
            }

            let t_supply = (inputs.t_supply.round() as u32).max(1);
            b.timed(
                &format!("supply-{i}"),
                Firing::Deterministic(t_supply),
                &[(supplied, 1)],
                &[(ready, 1)],
            );
        }

        Ok(CoherenceNet {
            net: b.build()?,
            n,
            tau: inputs.tau,
            t_supply: inputs.t_supply,
            think,
            bus_free,
            bus_transitions,
            wait_places,
        })
    }

    /// Solves the net and extracts the paper's measures.
    ///
    /// # Errors
    ///
    /// Propagates exploration/solution failures (notably
    /// [`GtpnError::StateSpaceExplosion`] for large `n` — the paper's
    /// point).
    pub fn solve(&self, options: &ReachabilityOptions) -> Result<CoherenceMeasures, GtpnError> {
        let sol = solve_with_options(&self.net, options)?;
        Ok(self.measures(&sol))
    }

    /// Extracts measures from an already-solved net.
    pub fn measures(&self, sol: &GtpnSolution) -> CoherenceMeasures {
        let total_throughput: f64 = self.think.iter().map(|&t| sol.throughput(t)).sum();
        let r = self.n as f64 / total_throughput;
        let speedup = total_throughput * (self.tau + self.t_supply);
        let bus_utilization: f64 =
            self.bus_transitions.iter().map(|&t| sol.utilization(t)).sum();
        let mean_bus_queue: f64 =
            self.wait_places.iter().map(|&p| sol.mean_tokens(p)).sum();
        CoherenceMeasures {
            r,
            speedup,
            bus_utilization,
            mean_bus_queue,
            states: sol.state_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};
    use snoop_workload::timing::TimingModel;

    fn inputs(level: SharingLevel, mods: &[u8]) -> ModelInputs {
        ModelInputs::derive_adjusted(
            &WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
            &TimingModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_processor_matches_renewal_argument() {
        let i = inputs(SharingLevel::Five, &[]);
        let net = CoherenceNet::build(&i, 1).unwrap();
        let m = net.solve(&ReachabilityOptions::default()).unwrap();
        // With no contention, R = τ + T_supply + p_bc·T_write + p_rr·E[t_read]
        // where E[t_read] uses the integer-rounded durations.
        assert!((m.speedup - 0.85).abs() < 0.02, "speedup = {}", m.speedup);
        assert!(m.bus_utilization < 0.2);
    }

    #[test]
    fn two_processors_nearly_double() {
        let i = inputs(SharingLevel::Five, &[]);
        let net = CoherenceNet::build(&i, 2).unwrap();
        let m = net.solve(&ReachabilityOptions::default()).unwrap();
        // Table 4.1(a): 1.67 at N = 2 (MVA); the GTPN should be close.
        assert!((m.speedup - 1.67).abs() < 0.08, "speedup = {}", m.speedup);
    }

    #[test]
    fn state_space_grows_fast() {
        let i = inputs(SharingLevel::Five, &[]);
        let s1 = CoherenceNet::build(&i, 1)
            .unwrap()
            .solve(&ReachabilityOptions::default())
            .unwrap()
            .states;
        let s2 = CoherenceNet::build(&i, 2)
            .unwrap()
            .solve(&ReachabilityOptions::default())
            .unwrap()
            .states;
        assert!(s2 > 4 * s1, "states: {s1} → {s2}");
    }

    #[test]
    fn oversized_net_fails_fast_instead_of_accumulating_leaves() {
        // At N = 8 the weight races inside one settlement enumerate far
        // more pre-dedup leaves than any reasonable state budget; the
        // explorer must stop at the successor budget rather than grow the
        // distribution unboundedly before interning ever sees it.
        let i = inputs(SharingLevel::Twenty, &[]);
        let net = CoherenceNet::build(&i, 8).unwrap();
        let start = std::time::Instant::now();
        let err = net
            .solve(&ReachabilityOptions { max_states: 500, ..ReachabilityOptions::default() })
            .unwrap_err();
        assert!(
            matches!(err, GtpnError::StateSpaceExplosion { limit: 500 }),
            "expected a state-space explosion, got {err:?}"
        );
        assert!(start.elapsed().as_secs() < 30, "explosion must be detected promptly");
    }

    #[test]
    fn bus_queue_tracks_mva_estimate() {
        // Beyond speedup: the GTPN's time-averaged wait-place population
        // should sit near the MVA's queue estimate. The MVA's Q̄ counts
        // requests in the whole bus phase (waiting + in service), so
        // compare against queue + utilization.
        use snoop_mva::{MvaModel, SolverOptions};
        let i = inputs(SharingLevel::Five, &[]);
        let net = CoherenceNet::build(&i, 2).unwrap();
        let g = net.solve(&ReachabilityOptions::default()).unwrap();
        let mva = MvaModel::new(i).solve(2, &SolverOptions::default()).unwrap();
        let gtpn_bus_phase = g.mean_bus_queue + g.bus_utilization;
        // Q̄_bus is the *other*-cache population (N−1 scaling); both are
        // small at N = 2 — agreement within a third of a request.
        assert!(
            (gtpn_bus_phase - 2.0 / 1.0 * mva.q_bus).abs() < 0.35,
            "GTPN bus phase {gtpn_bus_phase} vs MVA 2·Q̄ {}",
            2.0 * mva.q_bus
        );
        assert!(g.mean_bus_queue >= 0.0);
    }

    #[test]
    fn memory_contention_barely_moves_the_needle() {
        // Quantifies DESIGN.md's omission: adding memory-module contention
        // to the net changes the 2-processor speedup by well under 2% for
        // the Appendix-A workloads (the MVA's w_mem is a fraction of a
        // cycle here), at the price of a larger state space.
        let i = inputs(SharingLevel::Twenty, &[]);
        let plain = CoherenceNet::build(&i, 2)
            .unwrap()
            .solve(&ReachabilityOptions::default())
            .unwrap();
        let with_memory =
            CoherenceNet::build_with_options(&i, 2, CoherenceNetOptions { model_memory: true })
                .unwrap()
                .solve(&ReachabilityOptions::default())
                .unwrap();
        let delta = (plain.speedup - with_memory.speedup).abs() / plain.speedup;
        assert!(delta < 0.02, "memory contention changed speedup by {:.2}%", delta * 100.0);
        assert!(with_memory.states >= plain.states);
    }

    #[test]
    fn mod1_outperforms_write_once_in_gtpn_too() {
        let wo = CoherenceNet::build(&inputs(SharingLevel::Five, &[]), 2)
            .unwrap()
            .solve(&ReachabilityOptions::default())
            .unwrap();
        let m1 = CoherenceNet::build(&inputs(SharingLevel::Five, &[1]), 2)
            .unwrap()
            .solve(&ReachabilityOptions::default())
            .unwrap();
        assert!(m1.speedup > wo.speedup, "{} vs {}", m1.speedup, wo.speedup);
    }
}
