//! Ready-made GTPN models.
//!
//! * [`classic`] — textbook nets with closed-form solutions, used to
//!   validate the engine itself;
//! * [`coherence`] — the snooping-cache multiprocessor net (the detailed
//!   model the paper validates its MVA equations against), built from the
//!   same derived [`snoop_workload::derived::ModelInputs`] the MVA model
//!   consumes.

pub mod classic;
pub mod coherence;
