//! Classic nets with known solutions, used as engine validation fixtures.

use crate::net::{Firing, Net, NetBuilder, PlaceId, TransitionId};
use crate::GtpnError;

/// A closed cyclic server: `customers` tokens circulate between a
/// geometric "think" stage and a deterministic single server — the
/// machine-repairman model, the skeleton of the multiprocessor net.
#[derive(Debug, Clone)]
pub struct MachineRepairman {
    /// The underlying net.
    pub net: Net,
    /// Thinking stations (one geometric transition per customer).
    pub think: Vec<TransitionId>,
    /// The repair (service) transitions, one per customer.
    pub serve: Vec<TransitionId>,
    /// The queue place (customers waiting for the server).
    pub queue: Vec<PlaceId>,
    /// The server-free place.
    pub server_free: PlaceId,
}

impl MachineRepairman {
    /// Builds the model: `customers` machines, geometric think with mean
    /// `1/think_p`, deterministic service of `service` ticks.
    ///
    /// Each customer gets its own think transition and queue place so the
    /// engine's state space mirrors the multiprocessor net's structure.
    ///
    /// # Errors
    ///
    /// Propagates net-construction errors (e.g. zero service time).
    pub fn build(customers: usize, think_p: f64, service: u32) -> Result<Self, GtpnError> {
        let mut b = NetBuilder::new();
        let server_free = b.place("server-free", 1);
        let mut think = Vec::new();
        let mut serve = Vec::new();
        let mut queue = Vec::new();
        for i in 0..customers {
            let ready = b.place(&format!("ready-{i}"), 1);
            let waiting = b.place(&format!("waiting-{i}"), 0);
            think.push(b.timed(
                &format!("think-{i}"),
                Firing::Geometric(think_p),
                &[(ready, 1)],
                &[(waiting, 1)],
            ));
            serve.push(b.timed(
                &format!("serve-{i}"),
                Firing::Deterministic(service),
                &[(waiting, 1), (server_free, 1)],
                &[(ready, 1), (server_free, 1)],
            ));
            queue.push(waiting);
        }
        Ok(MachineRepairman { net: b.build()?, think, serve, queue, server_free })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_net;

    #[test]
    fn single_customer_matches_renewal_theory() {
        // One machine: cycle = mean think (1/p) + service (s).
        let m = MachineRepairman::build(1, 0.25, 3).unwrap();
        let sol = solve_net(&m.net).unwrap();
        let cycle = 1.0 / 0.25 + 3.0;
        assert!((sol.throughput(m.think[0]) - 1.0 / cycle).abs() < 1e-9);
        // Server busy s out of every cycle ticks.
        assert!((sol.utilization(m.serve[0]) - 3.0 / cycle).abs() < 1e-9);
    }

    #[test]
    fn two_customers_contend() {
        let m = MachineRepairman::build(2, 0.25, 3).unwrap();
        let sol = solve_net(&m.net).unwrap();
        // Per-customer throughput drops below the solo value because of
        // queueing, but total server utilization rises.
        let solo_cycle = 1.0 / 0.25 + 3.0;
        let x0 = sol.throughput(m.think[0]);
        let x1 = sol.throughput(m.think[1]);
        assert!((x0 - x1).abs() < 1e-9, "symmetric customers: {x0} vs {x1}");
        assert!(x0 < 1.0 / solo_cycle);
        let server_util: f64 = (x0 + x1) * 3.0;
        assert!(server_util > 3.0 / solo_cycle);
        assert!(server_util < 1.0);
    }

    #[test]
    fn heavy_load_saturates_server() {
        // Think almost instantaneous: the server should be ~always busy and
        // throughput ~1/service.
        let m = MachineRepairman::build(3, 0.95, 4).unwrap();
        let sol = solve_net(&m.net).unwrap();
        let total: f64 = m.think.iter().map(|&t| sol.throughput(t)).sum();
        assert!((total - 0.25).abs() < 0.02, "total throughput {total}");
        let util: f64 = m.serve.iter().map(|&t| sol.utilization(t)).sum();
        assert!(util > 0.9, "server utilization {util}");
    }

    #[test]
    fn state_count_grows_with_customers() {
        // The paper's Section 3.2 cost argument in miniature.
        let sizes: Vec<usize> = (1..=3)
            .map(|n| {
                let m = MachineRepairman::build(n, 0.4, 4).unwrap();
                solve_net(&m.net).unwrap().state_count()
            })
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
        // Growth is multiplicative, not additive.
        assert!(sizes[2] > 2 * sizes[1], "{sizes:?}");
    }
}
