use std::fmt;

use snoop_numeric::NumericError;

/// Error type for GTPN construction and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum GtpnError {
    /// A transition references a place that does not exist.
    UnknownPlace {
        /// Name of the offending transition.
        transition: String,
    },
    /// A transition has an invalid parameter (zero duration on a
    /// deterministic firing, probability outside (0, 1], non-positive
    /// weight…).
    InvalidTransition {
        /// Name of the offending transition.
        transition: String,
        /// What is wrong with it.
        reason: String,
    },
    /// The net is structurally unusable (no places or no transitions).
    EmptyNet,
    /// Reachability analysis exceeded the state budget.
    StateSpaceExplosion {
        /// The budget that was exceeded.
        limit: usize,
    },
    /// A marking would exceed the per-place token bound (likely an unbounded
    /// net).
    UnboundedPlace {
        /// Index of the offending place.
        place: usize,
    },
    /// Immediate-transition resolution did not terminate (an immediate
    /// cycle that consumes and produces the same tokens forever).
    ImmediateLivelock,
    /// Steady-state solution failed.
    Numeric(NumericError),
}

impl fmt::Display for GtpnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GtpnError::UnknownPlace { transition } => {
                write!(f, "transition {transition:?} references an unknown place")
            }
            GtpnError::InvalidTransition { transition, reason } => {
                write!(f, "transition {transition:?} is invalid: {reason}")
            }
            GtpnError::EmptyNet => write!(f, "net has no places or no transitions"),
            GtpnError::StateSpaceExplosion { limit } => {
                write!(f, "reachability exceeded the state budget of {limit} states")
            }
            GtpnError::UnboundedPlace { place } => {
                write!(f, "place {place} exceeds the token bound; the net looks unbounded")
            }
            GtpnError::ImmediateLivelock => {
                write!(f, "immediate transitions cycle without consuming time")
            }
            GtpnError::Numeric(e) => write!(f, "steady-state solution failed: {e}"),
        }
    }
}

impl std::error::Error for GtpnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GtpnError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for GtpnError {
    fn from(e: NumericError) -> Self {
        GtpnError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(GtpnError::EmptyNet.to_string().contains("no places"));
        assert!(GtpnError::StateSpaceExplosion { limit: 10 }.to_string().contains("10"));
        assert!(GtpnError::UnknownPlace { transition: "t".into() }.to_string().contains("t"));
        assert!(GtpnError::ImmediateLivelock.to_string().contains("time"));
    }
}
