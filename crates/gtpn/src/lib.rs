//! A Generalized Timed Petri Net (GTPN) engine — the paper's *detailed
//! comparator*.
//!
//! The MVA model of `snoop-mva` is validated in the paper against the GTPN
//! models of Vernon & Holliday \[VeHo86\], solved with the tool of \[HoVe85\].
//! This crate implements a discrete-time GTPN engine in the same spirit:
//!
//! * **nets** with immediate transitions (probabilistic conflict resolution
//!   by weight, priority classes) and timed transitions (deterministic
//!   integer durations or geometric/memoryless completion),
//! * **reachability analysis** producing the timed state graph (markings ×
//!   in-flight firings),
//! * an **embedded discrete-time Markov chain** whose steady state (solved
//!   directly or iteratively via `snoop-numeric`) yields time-averaged
//!   token populations and transition throughputs.
//!
//! The cost of this pipeline grows combinatorially with the number of
//! processors modeled — which is precisely the paper's Section 3.2 point
//! ("the time to solve the GTPN model increases exponentially with the
//! number of processors"); the benchmark harness measures that growth.
//!
//! [`models::coherence`] builds the snooping-cache GTPN for small systems;
//! [`models::classic`] holds textbook nets with known solutions used to
//! validate the engine itself.
//!
//! # Example
//!
//! ```
//! use snoop_gtpn::net::{Firing, NetBuilder};
//! use snoop_gtpn::solve::solve_net;
//!
//! # fn main() -> Result<(), snoop_gtpn::GtpnError> {
//! // A two-phase cycle: work for 2 cycles, rest for 1 cycle.
//! let mut b = NetBuilder::new();
//! let working = b.place("working", 1);
//! let resting = b.place("resting", 0);
//! let finish = b.timed("finish", Firing::Deterministic(2), &[(working, 1)], &[(resting, 1)]);
//! let restart = b.timed("restart", Firing::Deterministic(1), &[(resting, 1)], &[(working, 1)]);
//! let net = b.build()?;
//! let solution = solve_net(&net)?;
//! // The token spends 2 of every 3 cycles inside the `finish` firing.
//! assert!((solution.utilization(finish) - 2.0 / 3.0).abs() < 1e-9);
//! assert!((solution.throughput(finish) - 1.0 / 3.0).abs() < 1e-9);
//! assert!((solution.throughput(restart) - 1.0 / 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;

pub mod chain;
pub mod dot;
pub mod marking;
pub mod models;
pub mod net;
pub mod reachability;
pub mod solve;
pub mod transient;

mod error;

pub use error::GtpnError;
