//! Net structure: places, transitions, and the builder.

use crate::GtpnError;

/// Identifier of a place, returned by [`NetBuilder::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// Index into the marking vector.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a transition, returned by [`NetBuilder::immediate`] /
/// [`NetBuilder::timed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) usize);

impl TransitionId {
    /// Index into the net's transition list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Firing semantics of a transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Firing {
    /// Fires in zero time when enabled. Conflicts among simultaneously
    /// enabled immediate transitions are resolved probabilistically by
    /// weight within the highest enabled priority class.
    Immediate,
    /// Holds its input tokens for exactly this many time steps
    /// (deterministic duration, the GTPN feature the paper highlights:
    /// "we are able to consider deterministic bus access times").
    Deterministic(u32),
    /// Memoryless completion: an active firing finishes at each step with
    /// this probability (discrete-time analogue of an exponential duration;
    /// mean duration `1/p`).
    Geometric(f64),
}

/// One place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    /// Human-readable name (used in error messages and reports).
    pub name: String,
    /// Tokens in the initial marking.
    pub initial_tokens: u32,
}

/// One transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Human-readable name.
    pub name: String,
    /// Firing semantics.
    pub firing: Firing,
    /// Input arcs as `(place, multiplicity)`.
    pub inputs: Vec<(PlaceId, u32)>,
    /// Output arcs as `(place, multiplicity)`.
    pub outputs: Vec<(PlaceId, u32)>,
    /// Conflict-resolution weight (immediate transitions) — relative
    /// probability among simultaneously enabled transitions of the same
    /// priority.
    pub weight: f64,
    /// Priority class; higher fires first. Only meaningful for immediate
    /// transitions.
    pub priority: u32,
}

impl Transition {
    /// Whether the transition is enabled in `marking`.
    pub fn enabled(&self, marking: &[u32]) -> bool {
        self.inputs.iter().all(|&(p, k)| marking[p.0] >= k)
    }
}

/// A validated, immutable net.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl Net {
    /// The places.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The initial marking vector.
    pub fn initial_marking(&self) -> Vec<u32> {
        self.places.iter().map(|p| p.initial_tokens).collect()
    }

    /// Looks a place up by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// Looks a transition up by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions.iter().position(|t| t.name == name).map(TransitionId)
    }
}

/// Builder for [`Net`].
///
/// # Example
///
/// ```
/// use snoop_gtpn::net::{Firing, NetBuilder};
///
/// # fn main() -> Result<(), snoop_gtpn::GtpnError> {
/// let mut b = NetBuilder::new();
/// let idle = b.place("idle", 1);
/// let busy = b.place("busy", 0);
/// b.timed("work", Firing::Deterministic(3), &[(idle, 1)], &[(busy, 1)]);
/// b.timed("rest", Firing::Geometric(0.5), &[(busy, 1)], &[(idle, 1)]);
/// let net = b.build()?;
/// assert_eq!(net.places().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetBuilder::default()
    }

    /// Adds a place with an initial token count.
    pub fn place(&mut self, name: &str, initial_tokens: u32) -> PlaceId {
        self.places.push(Place { name: name.to_string(), initial_tokens });
        PlaceId(self.places.len() - 1)
    }

    /// Adds an immediate transition with weight 1 and priority 0.
    pub fn immediate(
        &mut self,
        name: &str,
        inputs: &[(PlaceId, u32)],
        outputs: &[(PlaceId, u32)],
    ) -> TransitionId {
        self.immediate_weighted(name, 1.0, 0, inputs, outputs)
    }

    /// Adds an immediate transition with an explicit weight and priority.
    pub fn immediate_weighted(
        &mut self,
        name: &str,
        weight: f64,
        priority: u32,
        inputs: &[(PlaceId, u32)],
        outputs: &[(PlaceId, u32)],
    ) -> TransitionId {
        self.transitions.push(Transition {
            name: name.to_string(),
            firing: Firing::Immediate,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
            weight,
            priority,
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds a timed transition with weight 1.
    pub fn timed(
        &mut self,
        name: &str,
        firing: Firing,
        inputs: &[(PlaceId, u32)],
        outputs: &[(PlaceId, u32)],
    ) -> TransitionId {
        self.timed_weighted(name, 1.0, firing, inputs, outputs)
    }

    /// Adds a timed transition with an explicit start-race weight (used
    /// when conflicting timed transitions encode a probabilistic choice,
    /// e.g. the remote-read service variants of the coherence model).
    pub fn timed_weighted(
        &mut self,
        name: &str,
        weight: f64,
        firing: Firing,
        inputs: &[(PlaceId, u32)],
        outputs: &[(PlaceId, u32)],
    ) -> TransitionId {
        self.transitions.push(Transition {
            name: name.to_string(),
            firing,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
            weight,
            priority: 0,
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Validates and freezes the net.
    ///
    /// # Errors
    ///
    /// Returns [`GtpnError::EmptyNet`] for a net without places or
    /// transitions, [`GtpnError::UnknownPlace`] for dangling arcs, and
    /// [`GtpnError::InvalidTransition`] for bad parameters (zero
    /// deterministic duration, geometric probability outside `(0, 1]`,
    /// non-positive weight, a timed transition labeled `Immediate`
    /// inconsistently, or a transition with no input arcs — which would
    /// fire unboundedly).
    pub fn build(self) -> Result<Net, GtpnError> {
        if self.places.is_empty() || self.transitions.is_empty() {
            return Err(GtpnError::EmptyNet);
        }
        let n_places = self.places.len();
        for t in &self.transitions {
            for &(p, _) in t.inputs.iter().chain(t.outputs.iter()) {
                if p.0 >= n_places {
                    return Err(GtpnError::UnknownPlace { transition: t.name.clone() });
                }
            }
            if t.inputs.is_empty() {
                return Err(GtpnError::InvalidTransition {
                    transition: t.name.clone(),
                    reason: "no input arcs (would fire unboundedly)".into(),
                });
            }
            if t.weight <= 0.0 || !t.weight.is_finite() {
                return Err(GtpnError::InvalidTransition {
                    transition: t.name.clone(),
                    reason: format!("weight {} must be positive", t.weight),
                });
            }
            match t.firing {
                Firing::Deterministic(0) => {
                    return Err(GtpnError::InvalidTransition {
                        transition: t.name.clone(),
                        reason: "deterministic duration must be at least 1 (use an \
                                 immediate transition for zero time)"
                            .into(),
                    });
                }
                Firing::Geometric(p) if !(p > 0.0 && p <= 1.0) => {
                    return Err(GtpnError::InvalidTransition {
                        transition: t.name.clone(),
                        reason: format!("geometric probability {p} must lie in (0, 1]"),
                    });
                }
                _ => {}
            }
        }
        Ok(Net { places: self.places, transitions: self.transitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_net() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let c = b.place("b", 0);
        let t = b.timed("t", Firing::Deterministic(2), &[(a, 1)], &[(c, 1)]);
        let net = b.build().unwrap();
        assert_eq!(net.initial_marking(), vec![1, 0]);
        assert_eq!(net.place_by_name("b"), Some(c));
        assert_eq!(net.transition_by_name("t"), Some(t));
        assert!(net.transitions()[0].enabled(&[1, 0]));
        assert!(!net.transitions()[0].enabled(&[0, 1]));
    }

    #[test]
    fn empty_net_rejected() {
        assert_eq!(NetBuilder::new().build().unwrap_err(), GtpnError::EmptyNet);
        let mut b = NetBuilder::new();
        b.place("lonely", 1);
        assert_eq!(b.build().unwrap_err(), GtpnError::EmptyNet);
    }

    #[test]
    fn dangling_place_rejected() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        b.timed("t", Firing::Deterministic(1), &[(a, 1)], &[(PlaceId(7), 1)]);
        assert!(matches!(b.build(), Err(GtpnError::UnknownPlace { .. })));
    }

    #[test]
    fn zero_duration_rejected() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        b.timed("t", Firing::Deterministic(0), &[(a, 1)], &[]);
        assert!(matches!(b.build(), Err(GtpnError::InvalidTransition { .. })));
    }

    #[test]
    fn bad_geometric_rejected() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        b.timed("t", Firing::Geometric(1.5), &[(a, 1)], &[]);
        assert!(matches!(b.build(), Err(GtpnError::InvalidTransition { .. })));
    }

    #[test]
    fn inputless_transition_rejected() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        b.timed("t", Firing::Deterministic(1), &[], &[(a, 1)]);
        assert!(matches!(b.build(), Err(GtpnError::InvalidTransition { .. })));
    }

    #[test]
    fn bad_weight_rejected() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        b.immediate_weighted("t", 0.0, 0, &[(a, 1)], &[]);
        assert!(matches!(b.build(), Err(GtpnError::InvalidTransition { .. })));
    }

    #[test]
    fn multiplicity_enabling() {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        b.timed("t", Firing::Deterministic(1), &[(a, 2)], &[]);
        let net = b.build().unwrap();
        assert!(!net.transitions()[0].enabled(&[1]));
        assert!(net.transitions()[0].enabled(&[2]));
    }
}
