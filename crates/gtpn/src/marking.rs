//! Timed states: marking plus in-flight firings.

/// Remaining-time encoding for an active firing: deterministic firings
/// carry a countdown, geometric firings are memoryless and carry none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Remaining {
    /// Completes when the countdown (in ticks) reaches zero.
    Ticks(u32),
    /// Completes each tick with the transition's geometric probability.
    Memoryless,
}

/// One in-flight firing of a timed transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActiveFiring {
    /// Index of the firing transition.
    pub transition: usize,
    /// Remaining time.
    pub remaining: Remaining,
}

/// A timed state of the net: the token marking (tokens currently *in
/// places* — tokens held by firing transitions are not) plus the multiset
/// of in-flight firings, kept sorted so equal states hash equally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TimedState {
    /// Tokens per place.
    pub marking: Vec<u32>,
    /// In-flight firings, sorted.
    pub active: Vec<ActiveFiring>,
}

impl TimedState {
    /// Creates a state, normalizing the firing order.
    pub fn new(marking: Vec<u32>, mut active: Vec<ActiveFiring>) -> Self {
        active.sort_unstable();
        TimedState { marking, active }
    }

    /// Number of active firings of transition `t`.
    pub fn active_count(&self, t: usize) -> u32 {
        self.active.iter().filter(|f| f.transition == t).count() as u32
    }

    /// Total tokens in places (excludes tokens held by firings).
    pub fn total_tokens(&self) -> u32 {
        self.marking.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn active_order_is_normalized() {
        let a = TimedState::new(
            vec![1, 0],
            vec![
                ActiveFiring { transition: 2, remaining: Remaining::Ticks(1) },
                ActiveFiring { transition: 0, remaining: Remaining::Memoryless },
            ],
        );
        let b = TimedState::new(
            vec![1, 0],
            vec![
                ActiveFiring { transition: 0, remaining: Remaining::Memoryless },
                ActiveFiring { transition: 2, remaining: Remaining::Ticks(1) },
            ],
        );
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn active_count_counts_duplicates() {
        let s = TimedState::new(
            vec![0],
            vec![
                ActiveFiring { transition: 1, remaining: Remaining::Ticks(3) },
                ActiveFiring { transition: 1, remaining: Remaining::Ticks(1) },
                ActiveFiring { transition: 2, remaining: Remaining::Memoryless },
            ],
        );
        assert_eq!(s.active_count(1), 2);
        assert_eq!(s.active_count(2), 1);
        assert_eq!(s.active_count(0), 0);
    }

    #[test]
    fn total_tokens_ignores_held() {
        let s = TimedState::new(
            vec![2, 3],
            vec![ActiveFiring { transition: 0, remaining: Remaining::Ticks(1) }],
        );
        assert_eq!(s.total_tokens(), 5);
    }
}
