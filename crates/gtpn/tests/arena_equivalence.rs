//! Equivalence tests for the arena-interned reachability expansion.
//!
//! The state arena replaced a `HashMap<TimedState, usize>` intern index;
//! these tests pin the contract that refactor must keep on a real model —
//! the N = 3 Write-Once coherence net, the largest graph the benchmark
//! harness exercises: no state is interned twice, the graph is a proper
//! stochastic matrix, the parallel frontier expansion reproduces the
//! serial graph bit for bit, and the embedded chain still solves to the
//! same stationary distribution by both the dense and sparse paths.

use std::collections::HashSet;

use snoop_gtpn::chain::transition_matrix;
use snoop_gtpn::models::coherence::CoherenceNet;
use snoop_gtpn::reachability::{explore, ReachabilityOptions, StateGraph};
use snoop_numeric::markov::{steady_state_dense, steady_state_sparse, SparseOptions};
use snoop_protocol::ModSet;
use snoop_workload::derived::ModelInputs;
use snoop_workload::params::{SharingLevel, WorkloadParams};
use snoop_workload::timing::TimingModel;

fn write_once_graph(threads: usize) -> StateGraph {
    let inputs = ModelInputs::derive_adjusted(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
        &TimingModel::default(),
    )
    .expect("appendix A inputs derive");
    let net = CoherenceNet::build(&inputs, 3).expect("N = 3 write-once net builds");
    let options = ReachabilityOptions { threads, ..ReachabilityOptions::default() };
    explore(&net.net, &options).expect("graph fits default budgets")
}

#[test]
fn arena_interning_yields_distinct_states_and_stochastic_edges() {
    let graph = write_once_graph(1);
    assert!(graph.len() > 100, "unexpectedly small graph: {}", graph.len());

    // The intern table must never hand out two ids for one state.
    let distinct: HashSet<_> = graph.states.iter().collect();
    assert_eq!(distinct.len(), graph.len(), "duplicate interned states");

    for (s, row) in graph.edges.iter().enumerate() {
        let sum: f64 = row.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9, "state {s} row sums to {sum}");
        for &(target, p) in row {
            assert!(target < graph.len(), "state {s} edge to out-of-range {target}");
            assert!(p > 0.0, "state {s} carries a non-positive edge");
        }
    }
    for &(s, p) in &graph.initial {
        assert!(s < graph.len());
        assert!(p > 0.0);
    }
}

#[test]
fn parallel_expansion_reproduces_the_serial_graph() {
    let serial = write_once_graph(1);
    for threads in [2, 4] {
        let parallel = write_once_graph(threads);
        assert_eq!(serial, parallel, "{threads}-thread graph diverged");
    }
}

#[test]
fn arena_graph_solves_to_the_same_stationary_distribution() {
    let graph = write_once_graph(1);
    let p = transition_matrix(&graph).expect("transition matrix builds");
    let dense = steady_state_dense(&p).expect("dense steady state");

    let mut initial = vec![0.0; graph.len()];
    for &(s, prob) in &graph.initial {
        initial[s] += prob;
    }
    // Force the iterative sparse path for a genuine cross-solver check.
    let options = SparseOptions {
        dense_threshold: 0,
        dense_fallback_limit: 0,
        ..SparseOptions::default()
    };
    let sparse =
        steady_state_sparse(&p, Some(&initial), &options).expect("sparse steady state");

    let max_diff = dense
        .iter()
        .zip(&sparse.pi)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(max_diff < 1e-9, "dense and sparse solutions diverge: {max_diff:.3e}");
}
