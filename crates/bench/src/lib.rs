//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index); the benches
//! under `benches/` measure the efficiency claims of Section 3.2.

use snoop_mva::{MvaModel, MvaSolution, SolverOptions};
use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

/// Solves the MVA model for an Appendix-A workload.
///
/// # Panics
///
/// Panics on model construction/solution failure (experiment binaries want
/// loud failures).
pub fn solve_mva(sharing: SharingLevel, mods: ModSet, n: usize) -> MvaSolution {
    MvaModel::for_protocol(&WorkloadParams::appendix_a(sharing), mods)
        .expect("appendix-A parameters are valid")
        .solve(n, &SolverOptions::default())
        .expect("appendix-A models converge")
}

/// Formats a signed relative error in percent.
pub fn rel_err(model: f64, reference: f64) -> f64 {
    (model - reference) / reference * 100.0
}

/// Returns the largest absolute relative error (percent) across
/// `(model, reference)` pairs.
pub fn worst_abs_err<'a, I>(pairs: I) -> f64
where
    I: IntoIterator<Item = &'a (f64, f64)>,
{
    pairs
        .into_iter()
        .map(|&(model, reference)| rel_err(model, reference).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_mva_matches_published_ballpark() {
        let s = solve_mva(SharingLevel::Five, ModSet::new(), 10);
        assert!((s.speedup - 5.30).abs() < 0.1);
    }

    #[test]
    fn rel_err_signs() {
        assert!(rel_err(1.1, 1.0) > 0.0);
        assert!(rel_err(0.9, 1.0) < 0.0);
        assert!((rel_err(1.05, 1.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn worst_err_picks_max() {
        let pairs = [(1.0, 1.0), (1.1, 1.0), (0.8, 1.0)];
        assert!((worst_abs_err(&pairs) - 20.0).abs() < 1e-9);
    }
}
