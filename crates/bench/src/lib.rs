//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index); the benches
//! under `benches/` measure the efficiency claims of Section 3.2.

use snoop_mva::{MvaError, MvaModel, MvaSolution, ResilientOptions, ResilientSolution};
use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

/// Solves the MVA model for an Appendix-A workload through the resilient
/// escalation ladder, returning the solution together with its
/// [`snoop_mva::SolveDiagnostics`].
///
/// # Errors
///
/// Returns the error of the last ladder strategy when every strategy
/// fails (its display includes the per-attempt diagnostics).
pub fn try_solve_mva(
    sharing: SharingLevel,
    mods: ModSet,
    n: usize,
) -> Result<ResilientSolution, MvaError> {
    MvaModel::for_protocol(&WorkloadParams::appendix_a(sharing), mods)?
        .solve_resilient(n, &ResilientOptions::default())
}

/// Solves the MVA model for an Appendix-A workload.
///
/// Routed through the resilient escalation ladder: a solve that needed
/// escalation reports its diagnostics on stderr, and a solve that defeats
/// the whole ladder yields a NaN-valued sentinel row (also diagnosed on
/// stderr) so an experiment binary finishes its table instead of aborting
/// mid-way.
pub fn solve_mva(sharing: SharingLevel, mods: ModSet, n: usize) -> MvaSolution {
    match try_solve_mva(sharing, mods, n) {
        Ok(resilient) => {
            if resilient.diagnostics.retries() > 0 {
                eprintln!(
                    "solve_mva({sharing}, {mods}, N={n}) escalated:\n{}",
                    resilient.diagnostics
                );
            }
            resilient.solution
        }
        Err(e) => {
            eprintln!("solve_mva({sharing}, {mods}, N={n}) failed: {e}");
            failed_solution(n)
        }
    }
}

/// The NaN sentinel row emitted for an unsolvable configuration.
fn failed_solution(n: usize) -> MvaSolution {
    MvaSolution {
        n,
        r: f64::NAN,
        speedup: f64::NAN,
        processing_power: f64::NAN,
        bus_utilization: f64::NAN,
        memory_utilization: f64::NAN,
        w_bus: f64::NAN,
        w_mem: f64::NAN,
        q_bus: f64::NAN,
        n_interference: f64::NAN,
        t_interference: f64::NAN,
        r_local: f64::NAN,
        r_broadcast: f64::NAN,
        r_remote_read: f64::NAN,
        iterations: 0,
    }
}

/// Formats a signed relative error in percent.
pub fn rel_err(model: f64, reference: f64) -> f64 {
    (model - reference) / reference * 100.0
}

/// Returns the largest absolute relative error (percent) across
/// `(model, reference)` pairs.
pub fn worst_abs_err<'a, I>(pairs: I) -> f64
where
    I: IntoIterator<Item = &'a (f64, f64)>,
{
    pairs
        .into_iter()
        .map(|&(model, reference)| rel_err(model, reference).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_mva_matches_published_ballpark() {
        let s = solve_mva(SharingLevel::Five, ModSet::new(), 10);
        assert!((s.speedup - 5.30).abs() < 0.1);
    }

    #[test]
    fn try_solve_mva_reports_diagnostics() {
        let r = try_solve_mva(SharingLevel::Five, ModSet::new(), 10).unwrap();
        assert!((r.solution.speedup - 5.30).abs() < 0.1);
        assert!(!r.diagnostics.attempts.is_empty());
        assert!(r.diagnostics.winning_strategy().is_some());
    }

    #[test]
    fn rel_err_signs() {
        assert!(rel_err(1.1, 1.0) > 0.0);
        assert!(rel_err(0.9, 1.0) < 0.0);
        assert!((rel_err(1.05, 1.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn worst_err_picks_max() {
        let pairs = [(1.0, 1.0), (1.1, 1.0), (0.8, 1.0)];
        assert!((worst_abs_err(&pairs) - 20.0).abs() < 1e-9);
    }
}
