//! Reproduces the **Section 4.1 asymptotic analysis**: the N = 100 column
//! of Table 4.1 ("to verify that the performance does not change
//! appreciably beyond twenty processors") and the closed-form N → ∞
//! limits, including the observation that modification 4's benefit grows
//! with system size and sharing ("a greater potential gain for
//! modification 4 than was evident from previous results for ten
//! processors").
//!
//! ```text
//! cargo run -p snoop-bench --release --bin asymptote
//! ```

use snoop_bench::solve_mva;
use snoop_mva::asymptote::asymptotic;
use snoop_mva::MvaModel;
use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

fn main() {
    println!("speedups at N = 20, N = 100 and the N → ∞ limit");
    println!(
        "{:<10} {:<9} {:>8} {:>8} {:>8} {:>12}",
        "protocol", "sharing", "N=20", "N=100", "limit", "bottleneck"
    );
    for mods_str in ["WO", "WO+1", "WO+1+4"] {
        let mods: ModSet = mods_str.parse().expect("valid");
        for sharing in SharingLevel::ALL {
            let s20 = solve_mva(sharing, mods, 20).speedup;
            let s100 = solve_mva(sharing, mods, 100).speedup;
            let model =
                MvaModel::for_protocol(&WorkloadParams::appendix_a(sharing), mods)
                    .expect("valid");
            let a = asymptotic(model.inputs());
            println!(
                "{:<10} {:<9} {:>8.3} {:>8.3} {:>8.3} {:>12}",
                mods_str,
                sharing.to_string(),
                s20,
                s100,
                a.speedup,
                format!("{:?}", a.bottleneck).to_lowercase()
            );
        }
    }

    println!();
    println!("modification 4's advantage over modification 1 alone, by N:");
    println!("{:<9} {:>7} {:>7} {:>7} {:>7}", "sharing", "N=10", "N=20", "N=100", "limit");
    for sharing in SharingLevel::ALL {
        let gain = |n: usize| {
            let m1 = solve_mva(sharing, "WO+1".parse().expect("valid"), n).speedup;
            let m14 = solve_mva(sharing, "WO+1+4".parse().expect("valid"), n).speedup;
            (m14 / m1 - 1.0) * 100.0
        };
        let limit = {
            let a1 = asymptotic(
                MvaModel::for_protocol(
                    &WorkloadParams::appendix_a(sharing),
                    "WO+1".parse().expect("valid"),
                )
                .expect("valid")
                .inputs(),
            )
            .speedup;
            let a14 = asymptotic(
                MvaModel::for_protocol(
                    &WorkloadParams::appendix_a(sharing),
                    "WO+1+4".parse().expect("valid"),
                )
                .expect("valid")
                .inputs(),
            )
            .speedup;
            (a14 / a1 - 1.0) * 100.0
        };
        println!(
            "{:<9} {:>+6.1}% {:>+6.1}% {:>+6.1}% {:>+6.1}%",
            sharing.to_string(),
            gain(10),
            gain(20),
            gain(100),
            limit
        );
    }
    println!("(the gain grows with N and with sharing — the paper's Section 4.1 point)");

    // With the size-dependent sharing refinement (the [GrMi87] improvement
    // the paper's Section 2.3 calls for), csupply → 1 as N grows: more
    // misses are cache-supplied (fast), raising the large-N speedups.
    println!();
    println!("size-dependent sharing ([GrMi87] refinement, anchored at N = 10):");
    println!("{:<9} {:>11} {:>11} {:>13}", "sharing", "fixed N=100", "refined", "csupply_sw@100");
    for sharing in SharingLevel::ALL {
        let fixed = solve_mva(sharing, ModSet::new(), 100).speedup;
        let refined = snoop_mva::sweep::refined_speedup_series(
            ModSet::new(),
            sharing,
            &[100],
            &snoop_mva::SolverOptions::default(),
            10,
        )
        .expect("solves");
        let base = WorkloadParams::appendix_a(sharing);
        let refinement =
            snoop_workload::sharing::SizeDependentSharing::anchored(&base, 10).expect("valid");
        let csupply = refinement.at_size(&base, 100).csupply_sw;
        println!(
            "{:<9} {:>11.3} {:>11.3} {:>13.3}",
            sharing.to_string(),
            fixed,
            refined.points[0].speedup,
            csupply
        );
    }
}
