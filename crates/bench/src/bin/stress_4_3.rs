//! Reproduces the **Section 4.3 stress tests**: workload settings chosen
//! to maximize cache interference ("rep_p, rep_sw, and amod_sw to 0.0,
//! csupply_sro and csupply_sw to 1.0, p_sw to 0.2, and hit_sw to 0.1"),
//! where the paper found the MVA still within 5% of the detailed model.
//! The discrete-event simulator plays the detailed-model role.
//!
//! ```text
//! cargo run -p snoop-bench --release --bin stress_4_3
//! ```

use snoop_bench::rel_err;
use snoop_mva::{MvaModel, SolverOptions};
use snoop_protocol::ModSet;
use snoop_sim::{simulate, SimConfig};
use snoop_workload::params::WorkloadParams;

fn main() {
    println!("Section 4.3 stress test: MVA vs discrete-event simulation");
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "N", "MVA", "DES", "err%", "MVA U_bus", "DES U_bus"
    );
    let params = WorkloadParams::stress();
    let model = MvaModel::for_protocol(&params, ModSet::new()).expect("valid");
    let mut worst: f64 = 0.0;
    for n in [1usize, 2, 4, 6, 8, 10, 15, 20] {
        let mva = model.solve(n, &SolverOptions::default()).expect("converges");
        let sim = simulate(&SimConfig::for_protocol(n, params, ModSet::new()))
            .expect("valid config");
        let err = rel_err(mva.speedup, sim.speedup);
        worst = worst.max(err.abs());
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>+8.2} {:>10.3} {:>10.3}",
            n, mva.speedup, sim.speedup, err, mva.bus_utilization, sim.bus_utilization
        );
    }
    println!("worst |error|: {worst:.2}%   (paper: within 5%)");

    // A second stress variant the paper gestures at: maximal broadcast
    // pressure (every reference a first write to a shared block).
    println!();
    println!("extra stress variant: write-heavy shared workload");
    let heavy = WorkloadParams::builder()
        .streams(0.5, 0.0, 0.5)
        .r_sw(0.1)
        .h_sw(0.6)
        .amod_sw(0.0)
        .csupply_sw(1.0)
        .build()
        .expect("valid");
    let model = MvaModel::for_protocol(&heavy, ModSet::new()).expect("valid");
    let mut worst: f64 = 0.0;
    for n in [2usize, 6, 10] {
        let mva = model.solve(n, &SolverOptions::default()).expect("converges");
        let sim =
            simulate(&SimConfig::for_protocol(n, heavy, ModSet::new())).expect("valid config");
        let err = rel_err(mva.speedup, sim.speedup);
        worst = worst.max(err.abs());
        println!("N = {n:<3} MVA {:.3}  DES {:.3}  err {err:+.2}%", mva.speedup, sim.speedup);
    }
    println!("worst |error|: {worst:.2}%");
}
