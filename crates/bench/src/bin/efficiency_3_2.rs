//! Reproduces the **Section 3.2 efficiency claims**:
//!
//! * MVA solution time is (nearly) independent of system size — "on the
//!   order of one second of CPU time for systems of arbitrary size" (we
//!   measure microseconds on modern hardware);
//! * detailed-model cost explodes with the number of processors — "the
//!   time to solve the GTPN model increases exponentially" (state counts
//!   and wall time measured on our GTPN engine), and "simulation is
//!   equivalently expensive";
//! * the equations "converged within 15 iterations in all experiments".
//!
//! ```text
//! cargo run -p snoop-bench --release --bin efficiency_3_2
//! ```

use std::time::Instant;

use snoop_gtpn::models::coherence::CoherenceNet;
use snoop_gtpn::reachability::ReachabilityOptions;
use snoop_mva::{MvaModel, SolverOptions};
use snoop_protocol::ModSet;
use snoop_sim::{simulate, SimConfig};
use snoop_workload::params::{SharingLevel, WorkloadParams};

fn main() {
    let params = WorkloadParams::appendix_a(SharingLevel::Five);
    let model = MvaModel::for_protocol(&params, ModSet::new()).expect("valid");

    println!("MVA solve time vs system size (tolerance 1e-12):");
    for n in [1usize, 2, 10, 100, 1_000, 10_000] {
        let start = Instant::now();
        let reps = 100;
        let mut iterations = 0;
        for _ in 0..reps {
            iterations = model
                .solve(n, &SolverOptions::default())
                .expect("converges")
                .iterations;
        }
        let per_solve = start.elapsed().as_secs_f64() / reps as f64;
        println!("  N = {n:<6} {:>10.1} µs/solve   {iterations} iterations", per_solve * 1e6);
    }

    println!();
    println!("iteration counts at the paper's engineering tolerance (N ≤ 10):");
    let mut worst = 0usize;
    for n in [1usize, 2, 4, 6, 8, 10] {
        let s = model.solve(n, &SolverOptions::paper()).expect("converges");
        worst = worst.max(s.iterations);
        print!("  N={n}:{} ", s.iterations);
    }
    println!("\n  worst: {worst} (paper: \"converged within 15 iterations\")");

    println!();
    println!("GTPN cost vs system size (the detailed model):");
    for n in 1..=3usize {
        let net = CoherenceNet::build(model.inputs(), n).expect("valid inputs");
        let start = Instant::now();
        let options =
            ReachabilityOptions { max_states: 2_000_000, ..ReachabilityOptions::default() };
        match net.solve(&options) {
            Ok(m) => println!(
                "  N = {n}: {:>8} states, {:>8.1} ms, speedup {:.3}",
                m.states,
                start.elapsed().as_secs_f64() * 1e3,
                m.speedup
            ),
            Err(e) => {
                println!("  N = {n}: {e}");
                break;
            }
        }
    }
    println!("  (the paper could not solve its GTPN beyond 10–12 processors at all;");
    println!("   growth here is the same combinatorial explosion in miniature)");

    println!();
    println!("simulation cost for ±1%-grade estimates:");
    for n in [2usize, 10] {
        let config = SimConfig::for_protocol(n, params, ModSet::new());
        let start = Instant::now();
        let m = simulate(&config).expect("valid config");
        println!(
            "  N = {n:<3} {:>8.1} ms for {} references (speedup {:.3})",
            start.elapsed().as_secs_f64() * 1e3,
            m.references,
            m.speedup
        );
    }
}
