//! Reproduces the **Section 4.4** comparisons with independent studies:
//!
//! * `power`   — processing power of the protocol with modifications 1+2+3
//!   at N = 9, 5% sharing (paper: MVA 4.32, GTPN 4.1, agreeing with
//!   Papamarcos & Patel's model for block size 4);
//! * `busutil` — relative bus utilization of Write-Once vs modifications
//!   2+3 at ~99% sharing, unsaturated load (paper: ≈ +10% for Write-Once,
//!   matching Katz et al.'s trace-driven results);
//! * `amod`    — with `amod_p = 0.95` (the Archibald & Baer setting),
//!   modification 2 performs roughly equal to modification 1 at 1% sharing.
//!
//! ```text
//! cargo run -p snoop-bench --release --bin independent_4_4 [power|busutil|amod|all]
//! ```

use snoop_mva::paper::{PROCESSING_POWER_GTPN, PROCESSING_POWER_MVA};
use snoop_mva::{MvaModel, SolverOptions};
use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "power" || which == "all" {
        power();
        println!();
    }
    if which == "busutil" || which == "all" {
        busutil();
        println!();
    }
    if which == "amod" || which == "all" {
        amod();
    }
}

fn power() {
    println!("4.4-1: processing power, mods 1+2+3, N = 9, 5% sharing");
    let model = MvaModel::for_protocol(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::from_numbers(&[1, 2, 3]).expect("valid"),
    )
    .expect("valid");
    let s = model.solve(9, &SolverOptions::default()).expect("converges");
    println!("paper MVA:  {PROCESSING_POWER_MVA:.2}");
    println!("paper GTPN: {PROCESSING_POWER_GTPN:.2}");
    println!("this MVA:   {:.2}", s.processing_power);
    println!(
        "check: processing power = speedup × τ/(τ+T_supply) = {:.2} × {:.4} = {:.2}",
        s.speedup,
        2.5 / 3.5,
        s.speedup * 2.5 / 3.5
    );
}

fn busutil() {
    println!("4.4-2: bus utilization, Write-Once vs mods 2+3, ~99% sharing, unsaturated");
    // The comparison's two ingredients (both from the paper's text): the
    // probability that a block is already modified on a write hit is much
    // lower under Write-Once than under modifications 2+3 (Write-Once keeps
    // writing blocks through), and — per the modification-3 discussion and
    // the Katz et al. implementation — a `write-word` occupies the bus for
    // two cycles where an `invalidate` takes one.
    use snoop_workload::timing::TimingModel;
    let base = WorkloadParams::high_sharing();
    let wo_params = WorkloadParams { amod_sw: 0.1, ..base };
    let m23_params = WorkloadParams { amod_sw: 0.7, ..base };
    let wo_timing = TimingModel { t_write: 2.0, ..TimingModel::default() };
    let m23_timing = TimingModel::default();

    // The exact workload behind the paper's "+10%" is not published; the
    // share of broadcast traffic (and hence the gap) scales with the
    // shared hit rate, so report the band. The paper's figure falls inside
    // it at trace-like hit rates.
    println!("{:>6} {:>10} {:>12} {:>10}", "h_sw", "U_bus WO", "U_bus m2+3", "WO vs m2+3");
    for h_sw in [0.5, 0.6, 0.7] {
        let wo_params = WorkloadParams { h_sw, ..wo_params };
        let m23_params = WorkloadParams { h_sw, ..m23_params };
        let wo = MvaModel::with_timing(&wo_params, ModSet::new(), &wo_timing)
            .expect("valid")
            .solve(2, &SolverOptions::default())
            .expect("converges");
        let m23 = MvaModel::with_timing(
            &m23_params,
            ModSet::from_numbers(&[2, 3]).expect("valid"),
            &m23_timing,
        )
        .expect("valid")
        .solve(2, &SolverOptions::default())
        .expect("converges");
        let increase = (wo.bus_utilization / m23.bus_utilization - 1.0) * 100.0;
        println!(
            "{h_sw:>6.2} {:>10.3} {:>12.3} {increase:>+9.1}%",
            wo.bus_utilization, m23.bus_utilization
        );
    }
    println!("(paper: \"the MVA models predict a 10% increase in bus utilization\",");
    println!(" agreeing with the trace-driven results of Katz et al. [KEWP85])");
}

fn amod() {
    println!("4.4-3: amod_p = 0.95 makes modification 2 ≈ modification 1 (1% sharing)");
    let base = WorkloadParams::appendix_a(SharingLevel::One);
    let high_amod = WorkloadParams { amod_private: 0.95, ..base };
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "N", "WO", "mod 1", "mod 2"
    );
    for n in [4usize, 8, 10] {
        let solve = |params: &WorkloadParams, mods: &[u8]| {
            MvaModel::for_protocol(params, ModSet::from_numbers(mods).expect("valid"))
                .expect("valid")
                .solve(n, &SolverOptions::default())
                .expect("converges")
                .speedup
        };
        // Default amod_p = 0.7: mod 1 clearly ahead of mod 2.
        let default = (solve(&base, &[]), solve(&base, &[1]), solve(&base, &[2]));
        // Archibald & Baer amod_p = 0.95: the gap closes.
        let high = (solve(&high_amod, &[]), solve(&high_amod, &[1]), solve(&high_amod, &[2]));
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3}   (amod_p = 0.70)",
            n, default.0, default.1, default.2
        );
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3}   (amod_p = 0.95)",
            "", high.0, high.1, high.2
        );
        let gap_default = (default.1 - default.2) / default.2 * 100.0;
        let gap_high = (high.1 - high.2) / high.2 * 100.0;
        println!("{:<10} mod1-over-mod2 gap: {gap_default:+.1}% → {gap_high:+.1}%", "");
    }
    println!("(paper: with amod_p = 0.95 \"the performance of modification 2 [is] roughly");
    println!(" equal to the performance of modification 1 for the 1% sharing case\")");
}
