//! Reproduces **Table 4.1** (panels a, b, c): MVA speedups against the
//! published MVA and detailed-model values, with the discrete-event
//! simulator standing in for the (unavailable) original GTPN tool as the
//! detailed referee.
//!
//! ```text
//! cargo run -p snoop-bench --release --bin table_4_1 [a|b|c|all] [--sim]
//! ```

use snoop_bench::rel_err;
use snoop_mva::paper::{table_4_1, TABLE_N};
use snoop_mva::{MvaModel, SolverOptions};
use snoop_sim::{simulate, SimConfig};
use snoop_workload::params::WorkloadParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let run_sim = args.iter().any(|a| a == "--sim");

    let panels: Vec<char> = match which {
        "a" | "b" | "c" => vec![which.chars().next().expect("non-empty")],
        _ => vec!['a', 'b', 'c'],
    };

    for panel in panels {
        let title = match panel {
            'a' => "Table 4.1(a): Speedups for the Write-Once protocol",
            'b' => "Table 4.1(b): Speedups for Enhancement 1",
            _ => "Table 4.1(c): Speedups for Enhancements 1 and 4",
        };
        println!("{title}");
        print!("{:<10} {:<14}", "sharing", "source");
        for n in TABLE_N {
            print!(" {n:>7}");
        }
        println!();

        let mut worst_vs_paper: f64 = 0.0;
        let mut worst_vs_detail: f64 = 0.0;
        for row in table_4_1().into_iter().filter(|r| r.panel == panel) {
            let params = WorkloadParams::appendix_a(row.sharing);
            let model =
                MvaModel::for_protocol(&params, row.mods()).expect("valid parameters");

            print!("{:<10} {:<14}", row.sharing.to_string(), "paper MVA");
            for v in row.mva {
                print!(" {v:>7.3}");
            }
            println!();

            print!("{:<10} {:<14}", "", "paper GTPN");
            for g in row.gtpn {
                match g {
                    Some(v) => print!(" {v:>7.3}"),
                    None => print!(" {:>7}", "-"),
                }
            }
            println!(" {:>7} {:>7} {:>7}", "-", "-", "-");

            print!("{:<10} {:<14}", "", "this MVA");
            let mut ours = Vec::new();
            for (i, &n) in TABLE_N.iter().enumerate() {
                let s = model.solve(n, &SolverOptions::default()).expect("converges");
                print!(" {:>7.3}", s.speedup);
                worst_vs_paper = worst_vs_paper.max(rel_err(s.speedup, row.mva[i]).abs());
                ours.push(s.speedup);
            }
            println!();

            if run_sim {
                print!("{:<10} {:<14}", "", "this DES");
                for (i, &n) in TABLE_N.iter().enumerate() {
                    let sim = simulate(&SimConfig::for_protocol(n, params, row.mods()))
                        .expect("valid config");
                    print!(" {:>7.3}", sim.speedup);
                    worst_vs_detail =
                        worst_vs_detail.max(rel_err(ours[i], sim.speedup).abs());
                }
                println!();
            }
        }
        println!("worst |this MVA − paper MVA|: {worst_vs_paper:.2}%");
        if run_sim {
            println!("worst |this MVA − this DES|: {worst_vs_detail:.2}%");
            println!("(the paper reports MVA within 3% of its detailed model, max 4.25%)");
        }
        println!();
    }
}
