//! Reproduces **Figure 4.1**: speedup-vs-N curves for the three plotted
//! protocols (Write-Once; +modification 1; +modifications 1 & 4) at the
//! three sharing levels, plus an ASCII rendering of the figure.
//!
//! ```text
//! cargo run -p snoop-bench --release --bin figure_4_1 [--csv]
//! ```

use snoop_mva::report::{speedup_csv, speedup_table};
use snoop_mva::sweep::figure_4_1_family;
use snoop_mva::SolverOptions;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let sizes: Vec<usize> = (1..=20).chain([25, 30, 40, 50, 75, 100]).collect();
    let family =
        figure_4_1_family(&sizes, &SolverOptions::default()).expect("appendix-A solves");

    if csv {
        print!("{}", speedup_csv(&family));
        return;
    }

    print!(
        "{}",
        speedup_table("Figure 4.1: The Mean Value Analysis Performance Results", &family)
    );
    println!();

    // ASCII plot: speedup (y, 0..8) against N (x).
    let height = 16usize;
    let max_speedup = 8.0;
    let plotted: Vec<(&str, char)> = vec![("WO", 'o'), ("WO+1", '+'), ("WO+1+4", '*')];
    println!("ASCII rendering (5% sharing): o = WO, + = WO+1, * = WO+1+4");
    let mut grid = vec![vec![' '; sizes.len()]; height + 1];
    for (label, mark) in &plotted {
        let series = family
            .iter()
            .find(|s| {
                s.mods.to_string() == *label && s.sharing == snoop_workload::params::SharingLevel::Five
            })
            .expect("series exists");
        for (x, p) in series.points.iter().enumerate() {
            let y = ((p.speedup / max_speedup) * height as f64).round() as usize;
            let y = y.min(height);
            grid[height - y][x] = *mark;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y_label = (height - i) as f64 / height as f64 * max_speedup;
        println!("{y_label:>5.1} |{}", row.iter().collect::<String>());
    }
    println!("      +{}", "-".repeat(sizes.len()));
    println!("       N = {:?}", &sizes[..8]);
    println!("       (columns continue to N = 100)");
}
