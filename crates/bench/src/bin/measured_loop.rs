//! Extension experiment: the paper's closing loop, executed end to end.
//!
//! 1. Run the trace-driven simulator (real LRU caches, real protocol
//!    state machines) and *measure* the workload parameters from the
//!    observed behaviour — the "workload measurement study" the paper
//!    calls for.
//! 2. Feed the measured parameters into the MVA model.
//! 3. Compare the analytic prediction against the simulation it was
//!    measured from, across protocols and system sizes.
//!
//! ```text
//! cargo run --release -p snoop-bench --bin measured_loop
//! ```

use snoop_bench::rel_err;
use snoop_mva::{MvaModel, SolverOptions};
use snoop_protocol::ModSet;
use snoop_sim::trace_mode::{simulate_trace_source_measuring, TraceSimConfig};

fn main() {
    println!("measured-parameter loop: trace sim → measured params → MVA → compare");
    println!(
        "{:<10} {:>4} {:>10} {:>12} {:>8}   measured (h_p / h_sw / csup_sw / rep_p)",
        "protocol", "N", "trace sim", "MVA(meas.)", "err%"
    );
    let mut worst: f64 = 0.0;
    for mods_str in ["WO", "WO+1", "berkeley", "WO+1+4"] {
        let mods: ModSet = mods_str.parse().expect("valid");
        for n in [2usize, 4, 8] {
            let mut config = TraceSimConfig::new(n, mods);
            config.warmup_references = 4_000;
            config.measured_references = 25_000;
            let source = config.generator().expect("valid config");
            let (sim, params) = simulate_trace_source_measuring(&config.drive_config(), source)
                .expect("valid config");
            let mva = MvaModel::for_protocol(&params, mods)
                .expect("measured params validate")
                .solve(n, &SolverOptions::default())
                .expect("converges");
            let err = rel_err(mva.speedup, sim.speedup);
            worst = worst.max(err.abs());
            println!(
                "{:<10} {:>4} {:>10.3} {:>12.3} {:>+8.2}   {:.3} / {:.3} / {:.3} / {:.3}",
                mods_str,
                n,
                sim.speedup,
                mva.speedup,
                err,
                params.h_private,
                params.h_sw,
                params.csupply_sw,
                params.rep_p
            );
        }
    }
    println!("worst |error|: {worst:.2}%");
    println!();
    println!("The analytic model, fed only parameters measurable by a hardware monitor");
    println!("or trace study, predicts the detailed simulation it was measured from —");
    println!("the deployment path the paper's conclusion proposes.");
}
