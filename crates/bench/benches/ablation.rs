//! Criterion bench: ablations of the design choices DESIGN.md calls out.
//!
//! * **cache-interference submodel** — the paper's Eq. (13)/Appendix-B
//!   machinery vs a model with the submodel disabled (interference masses
//!   zeroed): measures its cost and, via the reported speedup delta,
//!   whether the accuracy it buys is worth it per workload;
//! * **Aitken acceleration** in the generic fixed-point solver on a
//!   slowly-contracting map (the numeric substrate's feature);
//! * **damping ladder** — plain vs pre-damped iteration at deep
//!   saturation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use snoop_mva::{MvaModel, SolverOptions};
use snoop_numeric::fixed_point::{FixedPoint, Options};
use snoop_protocol::ModSet;
use snoop_workload::derived::ModelInputs;
use snoop_workload::params::{SharingLevel, WorkloadParams};
use snoop_workload::timing::TimingModel;

/// Inputs with the cache-interference masses zeroed (ablated submodel).
fn without_interference(inputs: &ModelInputs) -> ModelInputs {
    ModelInputs {
        shared_miss_mass: 0.0,
        sw_broadcast_mass: 0.0,
        csupply_weighted_mass: 0.0,
        dirty_supply_mass: 0.0,
        ..*inputs
    }
}

fn bench_interference_ablation(c: &mut Criterion) {
    let params = WorkloadParams::stress(); // the workload where it matters
    let full = ModelInputs::derive(&params, ModSet::new(), &TimingModel::default())
        .expect("valid");
    let ablated = without_interference(&full);

    let mut group = c.benchmark_group("interference_submodel");
    group.bench_function("full", |b| {
        let model = MvaModel::new(full);
        b.iter(|| model.solve(black_box(10), &SolverOptions::default()).expect("converges"));
    });
    group.bench_function("ablated", |b| {
        let model = MvaModel::new(ablated);
        b.iter(|| model.solve(black_box(10), &SolverOptions::default()).expect("converges"));
    });
    group.finish();

    // Print the accuracy side of the ablation once (Criterion reports the
    // cost side): the interference submodel's contribution to R.
    let with = MvaModel::new(full).solve(10, &SolverOptions::default()).expect("converges");
    let without =
        MvaModel::new(ablated).solve(10, &SolverOptions::default()).expect("converges");
    eprintln!(
        "interference ablation (stress workload, N = 10): speedup {:.4} with vs {:.4} without \
         ({:+.2}%)",
        with.speedup,
        without.speedup,
        (without.speedup / with.speedup - 1.0) * 100.0
    );
}

fn bench_aitken(c: &mut Criterion) {
    // A slowly contracting linear map: rate 0.995.
    let map = |x: &[f64], out: &mut [f64]| out[0] = 0.995 * x[0] + 0.005;
    let mut group = c.benchmark_group("fixed_point_acceleration");
    group.bench_function("plain", |b| {
        let solver = FixedPoint::new(Options {
            max_iterations: 100_000,
            tolerance: 1e-10,
            ..Options::default()
        });
        b.iter(|| solver.solve(black_box(vec![0.0]), map).expect("converges"));
    });
    group.bench_function("aitken", |b| {
        let solver = FixedPoint::new(Options {
            max_iterations: 100_000,
            tolerance: 1e-10,
            aitken: true,
            ..Options::default()
        });
        b.iter(|| solver.solve(black_box(vec![0.0]), map).expect("converges"));
    });
    group.finish();
}

fn bench_damping(c: &mut Criterion) {
    let model = MvaModel::for_protocol(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
    )
    .expect("valid");
    let mut group = c.benchmark_group("damping_at_saturation");
    group.sample_size(20);
    for (label, damping) in [("plain", 1.0), ("damped_0.5", 0.5)] {
        let options = SolverOptions { damping, ..SolverOptions::default() };
        group.bench_function(label, |b| {
            b.iter(|| model.solve(black_box(2_000), &options).expect("converges"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_interference_ablation, bench_aitken, bench_damping
}
criterion_main!(benches);
