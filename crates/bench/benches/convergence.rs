//! Criterion bench: fixed-point convergence cost across tolerances and
//! operating points.
//!
//! The paper reports convergence "within 15 iterations" at engineering
//! tolerance; this bench measures how the solve cost scales as the
//! tolerance tightens and as the system moves from light load into deep
//! bus saturation (where plain successive substitution slows and the
//! solver's damping ladder engages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snoop_mva::{MvaModel, SolverOptions};
use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

fn bench_tolerance(c: &mut Criterion) {
    let model = MvaModel::for_protocol(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
    )
    .expect("valid");

    let mut group = c.benchmark_group("solve_by_tolerance");
    for (label, tolerance) in [("1e-3", 1e-3), ("1e-6", 1e-6), ("1e-12", 1e-12)] {
        let options = SolverOptions { tolerance, ..SolverOptions::default() };
        group.bench_function(label, |b| {
            b.iter(|| model.solve(black_box(10), &options).expect("converges"));
        });
    }
    group.finish();
}

fn bench_operating_point(c: &mut Criterion) {
    let model = MvaModel::for_protocol(
        &WorkloadParams::appendix_a(SharingLevel::Twenty),
        ModSet::new(),
    )
    .expect("valid");

    let mut group = c.benchmark_group("solve_by_load");
    for n in [2usize, 10, 50, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| model.solve(black_box(n), &SolverOptions::default()).expect("converges"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_tolerance, bench_operating_point
}
criterion_main!(benches);
