//! Criterion bench: MVA solution cost vs system size.
//!
//! The paper's headline efficiency claim (Section 3.2) is that the MVA
//! solve is effectively constant in `N` — "under one second of cpu time,
//! independent of the size of the system analyzed". This bench quantifies
//! both the absolute cost and its (weak) growth with `N`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snoop_mva::{MvaModel, SolverOptions};
use snoop_protocol::ModSet;
use snoop_workload::params::{SharingLevel, WorkloadParams};

fn bench_solver_vs_n(c: &mut Criterion) {
    let model = MvaModel::for_protocol(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
    )
    .expect("valid");
    let options = SolverOptions::default();

    let mut group = c.benchmark_group("mva_solve_vs_n");
    for n in [1usize, 10, 100, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| model.solve(black_box(n), &options).expect("converges"));
        });
    }
    group.finish();
}

fn bench_solver_per_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("mva_solve_per_protocol");
    for mods_str in ["WO", "WO+1", "WO+2", "WO+3", "WO+1+4", "WO+1+2+3+4"] {
        let mods: ModSet = mods_str.parse().expect("valid");
        let model = MvaModel::for_protocol(
            &WorkloadParams::appendix_a(SharingLevel::Twenty),
            mods,
        )
        .expect("valid");
        group.bench_function(mods_str, |b| {
            b.iter(|| model.solve(black_box(10), &SolverOptions::default()).expect("converges"));
        });
    }
    group.finish();
}

fn bench_input_derivation(c: &mut Criterion) {
    let params = WorkloadParams::appendix_a(SharingLevel::Five);
    c.bench_function("derive_model_inputs", |b| {
        b.iter(|| {
            snoop_workload::derived::ModelInputs::derive_adjusted(
                black_box(&params),
                ModSet::all(),
                &snoop_workload::timing::TimingModel::default(),
            )
            .expect("valid")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_solver_vs_n, bench_solver_per_protocol, bench_input_derivation
}
criterion_main!(benches);
