//! Criterion bench: the cost of the detailed comparator models.
//!
//! Together with `mva_solver`, this bench reproduces the paper's Section
//! 3.2 cost comparison: the GTPN's reachability/steady-state pipeline
//! grows combinatorially with the processor count, and simulation "is
//! equivalently expensive" for comparable precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snoop_gtpn::models::coherence::CoherenceNet;
use snoop_gtpn::reachability::ReachabilityOptions;
use snoop_mva::MvaModel;
use snoop_protocol::ModSet;
use snoop_sim::{simulate, SimConfig};
use snoop_workload::params::{SharingLevel, WorkloadParams};

fn bench_gtpn_vs_n(c: &mut Criterion) {
    let model = MvaModel::for_protocol(
        &WorkloadParams::appendix_a(SharingLevel::Five),
        ModSet::new(),
    )
    .expect("valid");

    let mut group = c.benchmark_group("gtpn_solve_vs_n");
    group.sample_size(10);
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let net = CoherenceNet::build(model.inputs(), black_box(n)).expect("builds");
                net.solve(&ReachabilityOptions::default()).expect("solves")
            });
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_simulate");
    group.sample_size(10);
    for n in [2usize, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut config = SimConfig::for_protocol(
                n,
                WorkloadParams::appendix_a(SharingLevel::Five),
                ModSet::new(),
            );
            config.warmup_references = 500;
            config.measured_references = 5_000;
            b.iter(|| simulate(black_box(&config)).expect("valid config"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_gtpn_vs_n, bench_simulation
}
criterion_main!(benches);
