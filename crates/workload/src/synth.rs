//! Random reference sampling for the probabilistic simulator.
//!
//! The paper's detailed models drive each processor with the *same*
//! probabilistic workload the analytic model assumes: an exponential think
//! time with mean `tau`, then a reference whose stream, read/write type,
//! hit/miss outcome, and residency context are drawn from the basic
//! parameters. [`ReferenceGenerator`] produces exactly those draws, so the
//! discrete-event simulator and the MVA model disagree only through the
//! queueing behaviour they resolve differently — which is the comparison
//! the paper makes.

use rand::{Rng, RngExt};

use crate::params::WorkloadParams;

/// Which substream a reference belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Private blocks (never in another cache).
    Private,
    /// Shared read-only blocks.
    SharedReadOnly,
    /// Shared-writable blocks.
    SharedWritable,
}

/// One sampled memory reference with its resolved workload context.
///
/// The boolean fields resolve the probabilistic parameters at sampling time
/// so that the simulator does not need the parameters again: e.g.
/// `supplier_exists` is drawn from `csupply_sro`/`csupply_sw` for misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceEvent {
    /// Substream of the referenced block.
    pub stream: Stream,
    /// Whether this is a write.
    pub is_write: bool,
    /// Whether the reference hits in the local cache.
    pub hits: bool,
    /// For write hits: whether the block is already modified (`amod`).
    pub already_modified: bool,
    /// For misses: whether at least one other cache holds the block
    /// (`csupply`); always false for private misses.
    pub supplier_exists: bool,
    /// For misses with a supplier: whether the supplier holds the block
    /// dirty (`wb_csupply`); only shared-writable blocks can be dirty.
    pub supplier_dirty: bool,
    /// For misses: whether the victim block being replaced must be written
    /// back (`rep_p` / `rep_sw`).
    pub victim_dirty: bool,
}

/// Samples [`ReferenceEvent`]s and think times from [`WorkloadParams`].
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
/// use snoop_workload::params::WorkloadParams;
/// use snoop_workload::synth::ReferenceGenerator;
///
/// let mut generator =
///     ReferenceGenerator::new(WorkloadParams::default(), SmallRng::seed_from_u64(42));
/// let event = generator.next_reference();
/// let think = generator.think_time();
/// assert!(think >= 0.0);
/// let _ = event.is_write;
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceGenerator<R> {
    params: WorkloadParams,
    rng: R,
}

impl<R: Rng> ReferenceGenerator<R> {
    /// Creates a generator over validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation (construct them through the
    /// builder or presets to avoid this).
    pub fn new(params: WorkloadParams, rng: R) -> Self {
        params.validate().expect("workload parameters must be valid");
        ReferenceGenerator { params, rng }
    }

    /// The parameters in force.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Draws an exponentially distributed think time with mean `tau`
    /// (inverse-CDF sampling).
    pub fn think_time(&mut self) -> f64 {
        let u: f64 = self.rng.random();
        // 1 - u is in (0, 1]; ln of it is finite and non-positive.
        -self.params.tau * (1.0 - u).ln()
    }

    /// Draws the next memory reference.
    pub fn next_reference(&mut self) -> ReferenceEvent {
        let p = self.params;
        let stream = {
            let u: f64 = self.rng.random();
            if u < p.p_private {
                Stream::Private
            } else if u < p.p_private + p.p_sro {
                Stream::SharedReadOnly
            } else {
                Stream::SharedWritable
            }
        };

        let (is_write, hit_rate, amod, csupply, rep) = match stream {
            Stream::Private => (
                !self.rng.random_bool(p.r_private),
                p.h_private,
                p.amod_private,
                0.0,
                p.rep_p,
            ),
            Stream::SharedReadOnly => (false, p.h_sro, 0.0, p.csupply_sro, p.rep_p),
            Stream::SharedWritable => {
                (!self.rng.random_bool(p.r_sw), p.h_sw, p.amod_sw, p.csupply_sw, p.rep_sw)
            }
        };

        let hits = self.rng.random_bool(hit_rate);
        let already_modified = is_write && hits && self.rng.random_bool(amod);
        let supplier_exists = !hits && csupply > 0.0 && self.rng.random_bool(csupply);
        let supplier_dirty = supplier_exists
            && stream == Stream::SharedWritable
            && self.rng.random_bool(p.wb_csupply);
        let victim_dirty = !hits && self.rng.random_bool(rep);

        ReferenceEvent {
            stream,
            is_write,
            hits,
            already_modified,
            supplier_exists,
            supplier_dirty,
            victim_dirty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SharingLevel, WorkloadParams};
    use crate::streams::ReferenceRates;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn generator(params: WorkloadParams, seed: u64) -> ReferenceGenerator<SmallRng> {
        ReferenceGenerator::new(params, SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn think_time_mean_approaches_tau() {
        let mut g = generator(WorkloadParams::default(), 1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| g.think_time()).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean think time {mean}");
    }

    #[test]
    fn think_times_are_non_negative_and_finite() {
        let mut g = generator(WorkloadParams::default(), 2);
        for _ in 0..10_000 {
            let t = g.think_time();
            assert!(t.is_finite() && t >= 0.0);
        }
    }

    #[test]
    fn empirical_masses_match_reference_rates() {
        let params = WorkloadParams::appendix_a(SharingLevel::Twenty);
        let rates = ReferenceRates::from_params(&params);
        let mut g = generator(params, 3);
        let n = 400_000;
        let mut misses = 0u32;
        let mut sw_write_hits_unmod = 0u32;
        let mut private = 0u32;
        for _ in 0..n {
            let e = g.next_reference();
            if !e.hits {
                misses += 1;
            }
            if e.stream == Stream::Private {
                private += 1;
            }
            if e.stream == Stream::SharedWritable && e.is_write && e.hits && !e.already_modified
            {
                sw_write_hits_unmod += 1;
            }
        }
        let nf = n as f64;
        assert!((misses as f64 / nf - rates.misses()).abs() < 0.005);
        assert!((private as f64 / nf - params.p_private).abs() < 0.005);
        assert!(
            (sw_write_hits_unmod as f64 / nf - rates.sw_write_hit_unmod).abs() < 0.003
        );
    }

    #[test]
    fn private_misses_never_have_suppliers() {
        let mut g = generator(WorkloadParams::default(), 4);
        for _ in 0..50_000 {
            let e = g.next_reference();
            if e.stream == Stream::Private && !e.hits {
                assert!(!e.supplier_exists);
                assert!(!e.supplier_dirty);
            }
        }
    }

    #[test]
    fn sro_suppliers_are_never_dirty() {
        let mut g = generator(WorkloadParams::default(), 5);
        for _ in 0..50_000 {
            let e = g.next_reference();
            if e.stream == Stream::SharedReadOnly {
                assert!(!e.is_write);
                assert!(!e.supplier_dirty);
            }
        }
    }

    #[test]
    fn flags_are_consistent() {
        let mut g = generator(WorkloadParams::stress(), 6);
        for _ in 0..50_000 {
            let e = g.next_reference();
            if e.hits {
                assert!(!e.supplier_exists && !e.victim_dirty);
            }
            if e.already_modified {
                assert!(e.is_write && e.hits);
            }
            if e.supplier_dirty {
                assert!(e.supplier_exists);
            }
        }
    }

    #[test]
    fn stress_workload_has_no_dirty_victims() {
        // rep_p = rep_sw = 0 in the stress preset.
        let mut g = generator(WorkloadParams::stress(), 7);
        for _ in 0..20_000 {
            assert!(!g.next_reference().victim_dirty);
        }
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn invalid_params_panic() {
        let bad = WorkloadParams { h_sw: 2.0, ..WorkloadParams::default() };
        let _ = generator(bad, 8);
    }
}
