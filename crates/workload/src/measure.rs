//! Appendix-A workload-parameter estimation from address traces.
//!
//! The paper closes: "The model can be put to good use for evaluating the
//! protocols more thoroughly — all that is needed are workload measurement
//! studies to aid in the assignment of parameter values." This module is
//! that measurement study: it replays any [`TraceSource`] through a small
//! per-processor coherence-aware cache model and estimates every basic
//! parameter of [`WorkloadParams`] from the observed behaviour — stream
//! mix, read fractions, per-stream hit rates, already-modified
//! probabilities, cache-supply and dirty-supplier probabilities, and
//! replacement write-back probabilities — then derives the headline model
//! inputs (`p_local`, `p_bc`) through [`ModelInputs`].
//!
//! Measurement is *windowed*: the post-warmup stretch of the trace is cut
//! into equal windows, each estimated independently, and the across-window
//! spread yields Student-t confidence half-widths for the headline
//! statistics. Per-window derivation runs through the deterministic
//! parallel executor, so results are bit-identical at any thread count.

use std::collections::HashSet;

use snoop_numeric::exec::{par_map, ExecOptions};
use snoop_numeric::stats::{t_critical, RunningStats};
use snoop_protocol::ModSet;

use crate::derived::ModelInputs;
use crate::params::WorkloadParams;
use crate::synth::Stream;
use crate::timing::TimingModel;
use crate::trace::TraceSource;
use crate::WorkloadError;

/// Raw event counters, one accumulator per estimated parameter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParameterCounters {
    /// References per stream `[private, sro, sw]`.
    pub refs: [u64; 3],
    /// Reads per stream.
    pub reads: [u64; 3],
    /// Hits per stream.
    pub hits: [u64; 3],
    /// Write hits per stream.
    pub write_hits: [u64; 3],
    /// Write hits that found the block already modified, per stream.
    pub write_hits_modified: [u64; 3],
    /// Misses per stream.
    pub misses: [u64; 3],
    /// Misses that found a copy in another cache, per stream.
    pub misses_supplied: [u64; 3],
    /// Supplied misses whose supplier held the block dirty, per stream.
    pub misses_supplied_dirty: [u64; 3],
    /// Fills that evicted a dirty victim, per incoming stream.
    pub fills_dirty_victim: [u64; 3],
    /// Fills total, per incoming stream.
    pub fills: [u64; 3],
}

impl ParameterCounters {
    /// Total recorded references.
    pub fn total(&self) -> u64 {
        self.refs.iter().sum()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &ParameterCounters) {
        let pairs: [(&mut [u64; 3], &[u64; 3]); 10] = [
            (&mut self.refs, &other.refs),
            (&mut self.reads, &other.reads),
            (&mut self.hits, &other.hits),
            (&mut self.write_hits, &other.write_hits),
            (&mut self.write_hits_modified, &other.write_hits_modified),
            (&mut self.misses, &other.misses),
            (&mut self.misses_supplied, &other.misses_supplied),
            (&mut self.misses_supplied_dirty, &other.misses_supplied_dirty),
            (&mut self.fills_dirty_victim, &other.fills_dirty_victim),
            (&mut self.fills, &other.fills),
        ];
        for (dst, src) in pairs {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Converts the counters into workload parameters, keeping `tau` from
    /// the driving configuration (think time is an input, not a
    /// measurement).
    ///
    /// Empty counters fall back to neutral values (rates of 0, stream mix
    /// of the input) rather than dividing by zero.
    pub fn estimate(&self, tau: f64) -> WorkloadParams {
        let total = self.total().max(1) as f64;
        let rate = |num: u64, den: u64| if den > 0 { num as f64 / den as f64 } else { 0.0 };
        let private_dirty = self.fills_dirty_victim[0] + self.fills_dirty_victim[1];
        let private_fills = self.fills[0] + self.fills[1];

        let mut p = WorkloadParams {
            tau,
            p_private: self.refs[0] as f64 / total,
            p_sro: self.refs[1] as f64 / total,
            p_sw: self.refs[2] as f64 / total,
            h_private: rate(self.hits[0], self.refs[0]),
            h_sro: rate(self.hits[1], self.refs[1]),
            h_sw: rate(self.hits[2], self.refs[2]),
            r_private: rate(self.reads[0], self.refs[0]),
            r_sw: rate(self.reads[2], self.refs[2]),
            amod_private: rate(self.write_hits_modified[0], self.write_hits[0]),
            amod_sw: rate(self.write_hits_modified[2], self.write_hits[2]),
            csupply_sro: rate(self.misses_supplied[1], self.misses[1]),
            csupply_sw: rate(self.misses_supplied[2], self.misses[2]),
            wb_csupply: rate(self.misses_supplied_dirty[2], self.misses_supplied[2]),
            rep_p: rate(private_dirty, private_fills),
            rep_sw: rate(self.fills_dirty_victim[2], self.fills[2]),
        };
        // Normalize the stream mix exactly (guards the validate() sum).
        let sum = p.p_private + p.p_sro + p.p_sw;
        if sum > 0.0 {
            p.p_private /= sum;
            p.p_sro /= sum;
            p.p_sw /= sum;
        } else {
            p.p_private = 1.0;
            p.p_sro = 0.0;
            p.p_sw = 0.0;
        }
        p
    }
}

/// Why a measurement run could not produce an estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// The source never exhausts and no `max_references` cap was set, so
    /// the run would not terminate.
    UnboundedSource,
    /// The trace is too short for the requested warmup + window layout.
    TooFewReferences {
        /// References the source actually delivered.
        available: u64,
        /// Minimum needed (warmup plus one reference per window).
        needed: u64,
    },
    /// The estimated parameters failed model-input derivation.
    Workload(WorkloadError),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::UnboundedSource => write!(
                f,
                "trace source is unbounded; set MeasureConfig::max_references"
            ),
            MeasureError::TooFewReferences { available, needed } => write!(
                f,
                "trace too short to measure: {available} references, need at least {needed}"
            ),
            MeasureError::Workload(e) => write!(f, "measured parameters are unusable: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<WorkloadError> for MeasureError {
    fn from(e: WorkloadError) -> Self {
        MeasureError::Workload(e)
    }
}

/// Configuration of a measurement run.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Cache sets per processor in the measurement cache model.
    pub sets: usize,
    /// Associativity of the measurement caches.
    pub ways: usize,
    /// Number of measurement windows the post-warmup trace is cut into.
    pub windows: usize,
    /// Fraction of the trace spent warming the caches before counting.
    pub warmup_fraction: f64,
    /// Hard cap on total references consumed. Required for unbounded
    /// (synthetic) sources; for file traces it may trim the tail.
    pub max_references: Option<u64>,
    /// Protocol modifications used when deriving `p_local` / `p_bc`.
    pub mods: ModSet,
    /// Timing model used when deriving `p_local` / `p_bc`.
    pub timing: TimingModel,
    /// Fallback think time when the source measures none
    /// ([`TraceSource::measured_tau`] returns `None`).
    pub tau: f64,
    /// Executor options for the per-window derivation pass.
    pub exec: ExecOptions,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sets: 64,
            ways: 2,
            windows: 8,
            warmup_fraction: 0.1,
            max_references: None,
            mods: ModSet::new(),
            timing: TimingModel::default(),
            tau: WorkloadParams::default().tau,
            exec: ExecOptions::default(),
        }
    }
}

/// Per-window estimate.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// References counted in this window.
    pub references: u64,
    /// Parameters estimated from this window alone.
    pub params: WorkloadParams,
    /// Derived probability a reference completes locally.
    pub p_local: f64,
    /// Derived expected broadcasts per reference.
    pub p_bc: f64,
}

/// Across-window summary of one headline statistic.
#[derive(Debug, Clone)]
pub struct HeadlineStat {
    /// Statistic name.
    pub name: &'static str,
    /// Across-window mean.
    pub mean: f64,
    /// Across-window sample standard deviation.
    pub std_dev: f64,
    /// Student-t 95% confidence half-width on the mean.
    pub half_width: f64,
}

/// Everything measured beyond the pooled parameter point estimate.
#[derive(Debug, Clone)]
pub struct MeasureDiagnostics {
    /// Processors in the source.
    pub processors: usize,
    /// References consumed in total (warmup + measured).
    pub total_references: u64,
    /// References spent warming the caches.
    pub warmup_references: u64,
    /// References actually counted.
    pub measured_references: u64,
    /// Distinct cache blocks touched.
    pub distinct_blocks: u64,
    /// Per-window estimates, in trace order.
    pub windows: Vec<WindowStats>,
    /// Across-window confidence summaries for the headline statistics.
    pub headline: Vec<HeadlineStat>,
    /// Whether `tau` came from the trace itself (vs the config fallback).
    pub tau_measured: bool,
}

/// A measured workload: pooled parameters plus diagnostics.
#[derive(Debug, Clone)]
pub struct MeasuredWorkload {
    /// Parameters estimated from the pooled post-warmup counters.
    pub params: WorkloadParams,
    /// `p_local` derived from the pooled parameters.
    pub p_local: f64,
    /// `p_bc` derived from the pooled parameters.
    pub p_bc: f64,
    /// Windowed diagnostics.
    pub diagnostics: MeasureDiagnostics,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MState {
    Clean,
    Dirty,
}

/// One processor's measurement cache: set-associative, LRU within a set
/// (front = most recent), invalidation-based coherence.
#[derive(Debug, Clone)]
struct MeasureCache {
    sets: u64,
    ways: usize,
    lines: Vec<Vec<(u64, MState)>>,
}

impl MeasureCache {
    fn new(sets: usize, ways: usize) -> Self {
        MeasureCache { sets: sets as u64, ways, lines: vec![Vec::new(); sets] }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets) as usize
    }

    fn state(&self, block: u64) -> Option<MState> {
        let set = self.set_of(block);
        self.lines[set].iter().find(|(b, _)| *b == block).map(|(_, s)| *s)
    }

    /// Moves `block` to MRU and sets its state. The block must be present.
    fn touch(&mut self, block: u64, state: MState) {
        let set = self.set_of(block);
        let pos = self.lines[set].iter().position(|(b, _)| *b == block).expect("present");
        self.lines[set].remove(pos);
        self.lines[set].insert(0, (block, state));
    }

    /// Inserts `block` as MRU, returning the evicted victim if the set was
    /// full.
    fn fill(&mut self, block: u64, state: MState) -> Option<(u64, MState)> {
        let set = self.set_of(block);
        self.lines[set].insert(0, (block, state));
        if self.lines[set].len() > self.ways {
            self.lines[set].pop()
        } else {
            None
        }
    }

    fn invalidate(&mut self, block: u64) {
        let set = self.set_of(block);
        self.lines[set].retain(|(b, _)| *b != block);
    }

    /// Downgrades a dirty copy to clean (supplier wrote back).
    fn clean(&mut self, block: u64) {
        let set = self.set_of(block);
        if let Some(entry) = self.lines[set].iter_mut().find(|(b, _)| *b == block) {
            entry.1 = MState::Clean;
        }
    }
}

fn stream_index(stream: Stream) -> usize {
    match stream {
        Stream::Private => 0,
        Stream::SharedReadOnly => 1,
        Stream::SharedWritable => 2,
    }
}

/// Measures Appendix-A workload parameters from a [`TraceSource`].
///
/// Replays the trace round-robin across processors through per-processor
/// set-associative LRU caches with invalidation coherence, counting the
/// events each parameter is a rate of. The post-warmup stretch is cut into
/// [`MeasureConfig::windows`] equal windows whose independent estimates
/// give the confidence diagnostics.
///
/// # Errors
///
/// [`MeasureError::UnboundedSource`] when neither the source nor the
/// config bounds the run, [`MeasureError::TooFewReferences`] when the
/// trace cannot fill warmup plus one reference per window, and
/// [`MeasureError::Workload`] when the pooled estimate fails model-input
/// derivation.
pub fn measure_source<S: TraceSource>(
    source: &mut S,
    config: &MeasureConfig,
) -> Result<MeasuredWorkload, MeasureError> {
    let n = source.processors();
    let windows = config.windows.max(1);

    // Bound the run: the source's own count, the config cap, or error.
    let hint: Option<u64> = (0..n).try_fold(0u64, |acc, p| {
        source.remaining_hint(p).map(|r| acc + r)
    });
    let total = match (hint, config.max_references) {
        (Some(h), Some(cap)) => h.min(cap),
        (Some(h), None) => h,
        (None, Some(cap)) => cap,
        (None, None) => return Err(MeasureError::UnboundedSource),
    };
    let warmup = (total as f64 * config.warmup_fraction.clamp(0.0, 0.9)) as u64;
    let needed = warmup + windows as u64;
    if total < needed {
        return Err(MeasureError::TooFewReferences { available: total, needed });
    }
    let window_size = ((total - warmup) / windows as u64).max(1);

    let mut caches: Vec<MeasureCache> =
        (0..n).map(|_| MeasureCache::new(config.sets.max(1), config.ways.max(1))).collect();
    let mut window_counters = vec![ParameterCounters::default(); windows];
    let mut blocks_seen: HashSet<u64> = HashSet::new();
    let words_per_block = source.words_per_block().max(1);

    let mut alive: Vec<bool> = vec![true; n];
    let mut consumed = 0u64;
    'replay: while consumed < total {
        let mut progressed = false;
        for (p, alive_p) in alive.iter_mut().enumerate() {
            if consumed >= total {
                break 'replay;
            }
            if !*alive_p {
                continue;
            }
            let Some(record) = source.next_for(p) else {
                *alive_p = false;
                continue;
            };
            progressed = true;
            let block = record.address / words_per_block;
            let s = stream_index(record.stream);
            blocks_seen.insert(block);

            // Counting target: None during warmup, else the active window
            // (the last window absorbs the remainder).
            let counters = if consumed >= warmup {
                let idx = (((consumed - warmup) / window_size) as usize).min(windows - 1);
                Some(&mut window_counters[idx])
            } else {
                None
            };
            replay_reference(&mut caches, p, block, record.is_write, s, counters);
            consumed += 1;
        }
        if !progressed {
            break;
        }
    }

    let measured: u64 = window_counters.iter().map(ParameterCounters::total).sum();
    if consumed < needed || measured == 0 {
        return Err(MeasureError::TooFewReferences { available: consumed, needed });
    }

    let tau_measured = source.measured_tau();
    let tau = tau_measured.unwrap_or(config.tau);

    // Per-window estimates: independent, so derive them in parallel — the
    // deterministic executor keeps output bit-identical at any thread
    // count. A window whose estimate cannot be derived (e.g. an all-miss
    // degenerate stretch) is dropped from diagnostics rather than failing
    // the pooled measurement.
    let derived: Vec<Option<WindowStats>> =
        par_map(&window_counters, &config.exec, |counters| {
            let params = counters.estimate(tau);
            let inputs = ModelInputs::derive(&params, config.mods, &config.timing).ok()?;
            Some(WindowStats {
                references: counters.total(),
                params,
                p_local: inputs.p_local,
                p_bc: inputs.p_bc,
            })
        });
    let window_stats: Vec<WindowStats> = derived.into_iter().flatten().collect();

    let mut pooled = ParameterCounters::default();
    for c in &window_counters {
        pooled.merge(c);
    }
    let params = pooled.estimate(tau);
    let inputs = ModelInputs::derive(&params, config.mods, &config.timing)?;

    let headline = headline_stats(&window_stats);
    Ok(MeasuredWorkload {
        params,
        p_local: inputs.p_local,
        p_bc: inputs.p_bc,
        diagnostics: MeasureDiagnostics {
            processors: n,
            total_references: consumed,
            warmup_references: warmup,
            measured_references: measured,
            distinct_blocks: blocks_seen.len() as u64,
            windows: window_stats,
            headline,
            tau_measured: tau_measured.is_some(),
        },
    })
}

/// One reference through the coherence-aware cache model. `counters` is
/// `None` during warmup (caches update, nothing is counted).
fn replay_reference(
    caches: &mut [MeasureCache],
    p: usize,
    block: u64,
    is_write: bool,
    s: usize,
    counters: Option<&mut ParameterCounters>,
) {
    let own_state = caches[p].state(block);
    let mut c = ParameterCounters::default();
    c.refs[s] = 1;
    if !is_write {
        c.reads[s] = 1;
    }

    match own_state {
        Some(state) => {
            c.hits[s] = 1;
            if is_write {
                c.write_hits[s] = 1;
                if state == MState::Dirty {
                    c.write_hits_modified[s] = 1;
                }
                caches[p].touch(block, MState::Dirty);
                for (q, cache) in caches.iter_mut().enumerate() {
                    if q != p {
                        cache.invalidate(block);
                    }
                }
            } else {
                caches[p].touch(block, state);
            }
        }
        None => {
            c.misses[s] = 1;
            let mut supplied = false;
            let mut dirty_supplier = false;
            for (q, cache) in caches.iter().enumerate() {
                if q == p {
                    continue;
                }
                match cache.state(block) {
                    Some(MState::Dirty) => {
                        supplied = true;
                        dirty_supplier = true;
                    }
                    Some(MState::Clean) => supplied = true,
                    None => {}
                }
            }
            if supplied {
                c.misses_supplied[s] = 1;
                if dirty_supplier {
                    c.misses_supplied_dirty[s] = 1;
                }
            }
            if is_write {
                for (q, cache) in caches.iter_mut().enumerate() {
                    if q != p {
                        cache.invalidate(block);
                    }
                }
            } else if dirty_supplier {
                // The dirty supplier writes back and keeps a clean copy.
                for (q, cache) in caches.iter_mut().enumerate() {
                    if q != p {
                        cache.clean(block);
                    }
                }
            }
            let state = if is_write { MState::Dirty } else { MState::Clean };
            let victim = caches[p].fill(block, state);
            c.fills[s] = 1;
            if matches!(victim, Some((_, MState::Dirty))) {
                c.fills_dirty_victim[s] = 1;
            }
        }
    }

    if let Some(counters) = counters {
        counters.merge(&c);
    }
}

fn headline_stats(windows: &[WindowStats]) -> Vec<HeadlineStat> {
    let hit_rate = |w: &WindowStats| {
        let p = &w.params;
        p.p_private * p.h_private + p.p_sro * p.h_sro + p.p_sw * p.h_sw
    };
    let write_fraction = |w: &WindowStats| {
        let p = &w.params;
        p.p_private * (1.0 - p.r_private) + p.p_sw * (1.0 - p.r_sw)
    };
    type Statistic<'a> = (&'static str, &'a dyn Fn(&WindowStats) -> f64);
    let statistics: [Statistic<'_>; 5] = [
        ("hit_rate", &hit_rate),
        ("write_fraction", &write_fraction),
        ("sharing_fraction", &|w| w.params.p_sro + w.params.p_sw),
        ("p_local", &|w| w.p_local),
        ("p_bc", &|w| w.p_bc),
    ];
    statistics
        .iter()
        .map(|(name, value)| {
            let mut stats = RunningStats::new();
            for w in windows {
                stats.push(value(w));
            }
            let k = stats.count();
            let half_width = if k >= 2 {
                t_critical(k - 1, 0.05) * stats.sample_std_dev() / (k as f64).sqrt()
            } else {
                f64::INFINITY
            };
            HeadlineStat {
                name,
                mean: stats.mean(),
                std_dev: if k >= 2 { stats.sample_std_dev() } else { 0.0 },
                half_width,
            }
        })
        .collect()
}

/// Renders the diagnostics as an aligned text table for the CLI.
pub fn render_diagnostics(d: &MeasureDiagnostics) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "windows: {} x ~{} references ({} measured after {} warmup, {} distinct blocks)",
        d.windows.len(),
        if d.windows.is_empty() { 0 } else { d.measured_references / d.windows.len() as u64 },
        d.measured_references,
        d.warmup_references,
        d.distinct_blocks,
    );
    let _ = writeln!(out, "  {:<18} {:>10} {:>10} {:>10}", "statistic", "mean", "std", "+/-95%");
    for h in &d.headline {
        let _ = writeln!(
            out,
            "  {:<18} {:>10.4} {:>10.4} {:>10.4}",
            h.name, h.mean, h.std_dev, h.half_width
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceGenerator};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_counters_estimate_safely() {
        let c = ParameterCounters::default();
        let p = c.estimate(2.5);
        p.validate().unwrap();
        assert_eq!(p.p_private, 1.0);
        assert_eq!(p.h_sw, 0.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn simple_counters_produce_expected_rates() {
        let mut c = ParameterCounters::default();
        c.refs = [80, 10, 10];
        c.reads = [60, 10, 5];
        c.hits = [72, 9, 5];
        c.write_hits = [16, 0, 2];
        c.write_hits_modified = [8, 0, 1];
        c.misses = [8, 1, 5];
        c.misses_supplied = [0, 1, 4];
        c.misses_supplied_dirty = [0, 0, 2];
        c.fills = [8, 1, 5];
        c.fills_dirty_victim = [2, 0, 1];
        let p = c.estimate(2.5);
        p.validate().unwrap();
        assert!((p.p_private - 0.8).abs() < 1e-12);
        assert!((p.h_private - 0.9).abs() < 1e-12);
        assert!((p.r_private - 0.75).abs() < 1e-12);
        assert!((p.amod_private - 0.5).abs() < 1e-12);
        assert!((p.csupply_sw - 0.8).abs() < 1e-12);
        assert!((p.wb_csupply - 0.5).abs() < 1e-12);
        assert!((p.rep_sw - 0.2).abs() < 1e-12);
        // rep_p pools private and sro fills: 2 dirty of 9.
        assert!((p.rep_p - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = ParameterCounters { refs: [1, 2, 3], hits: [1, 0, 0], ..Default::default() };
        let b = ParameterCounters { refs: [10, 0, 0], hits: [5, 5, 5], ..Default::default() };
        a.merge(&b);
        assert_eq!(a.refs, [11, 2, 3]);
        assert_eq!(a.hits, [6, 5, 5]);
        assert_eq!(a.total(), 16);
    }

    fn synthetic_source(seed: u64) -> TraceGenerator<SmallRng> {
        TraceGenerator::new(
            WorkloadParams::default(),
            TraceConfig { private_blocks: 512, ..TraceConfig::default() },
            SmallRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn unbounded_source_without_cap_is_rejected() {
        let mut source = synthetic_source(1);
        let err = measure_source(&mut source, &MeasureConfig::default()).unwrap_err();
        assert_eq!(err, MeasureError::UnboundedSource);
    }

    #[test]
    fn too_short_trace_is_rejected() {
        let mut source = synthetic_source(2);
        let config = MeasureConfig { max_references: Some(5), ..MeasureConfig::default() };
        let err = measure_source(&mut source, &config).unwrap_err();
        assert!(matches!(err, MeasureError::TooFewReferences { .. }), "{err:?}");
    }

    #[test]
    fn measures_synthetic_workload_near_its_parameters() {
        let mut source = synthetic_source(3);
        let config = MeasureConfig { max_references: Some(120_000), ..MeasureConfig::default() };
        let m = measure_source(&mut source, &config).unwrap();
        m.params.validate().unwrap();
        let truth = WorkloadParams::default();
        // Stream mix and read fractions are direct frequencies — tight.
        assert!((m.params.p_private - truth.p_private).abs() < 0.01, "{:?}", m.params);
        assert!((m.params.r_private - truth.r_private).abs() < 0.02);
        // tau is carried from the generator, not the config fallback.
        assert!(m.diagnostics.tau_measured);
        assert_eq!(m.params.tau, truth.tau);
        assert!(m.p_local > 0.5 && m.p_local < 1.0, "p_local {}", m.p_local);
        assert_eq!(m.diagnostics.windows.len(), 8);
        assert_eq!(m.diagnostics.total_references, 120_000);
        assert!(m.diagnostics.distinct_blocks > 100);
    }

    #[test]
    fn window_estimates_are_consistent_with_pooled() {
        let mut source = synthetic_source(4);
        let config = MeasureConfig { max_references: Some(60_000), ..MeasureConfig::default() };
        let m = measure_source(&mut source, &config).unwrap();
        let hit = m.diagnostics.headline.iter().find(|h| h.name == "hit_rate").unwrap();
        let pooled_hit = m.params.p_private * m.params.h_private
            + m.params.p_sro * m.params.h_sro
            + m.params.p_sw * m.params.h_sw;
        assert!((hit.mean - pooled_hit).abs() < 0.05, "{} vs {}", hit.mean, pooled_hit);
        assert!(hit.half_width.is_finite() && hit.half_width >= 0.0);
    }

    #[test]
    fn measurement_is_deterministic_across_thread_counts() {
        let measure = |threads: usize| {
            let mut source = synthetic_source(5);
            let config = MeasureConfig {
                max_references: Some(30_000),
                exec: ExecOptions::with_threads(threads),
                ..MeasureConfig::default()
            };
            measure_source(&mut source, &config).unwrap()
        };
        let one = measure(1);
        let two = measure(2);
        let eight = measure(8);
        assert_eq!(format!("{:?}", one.params), format!("{:?}", two.params));
        assert_eq!(format!("{:?}", one.params), format!("{:?}", eight.params));
        assert_eq!(
            format!("{:?}", one.diagnostics.headline),
            format!("{:?}", two.diagnostics.headline)
        );
        assert_eq!(
            format!("{:?}", one.diagnostics.headline),
            format!("{:?}", eight.diagnostics.headline)
        );
    }

    #[test]
    fn render_diagnostics_lists_every_headline() {
        let mut source = synthetic_source(6);
        let config = MeasureConfig { max_references: Some(20_000), ..MeasureConfig::default() };
        let m = measure_source(&mut source, &config).unwrap();
        let text = render_diagnostics(&m.diagnostics);
        for name in ["hit_rate", "write_fraction", "sharing_fraction", "p_local", "p_bc"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
