//! File-backed trace ingestion: parse external address-trace formats into
//! [`TraceSource`]s.
//!
//! Two formats cover the related trace-driven simulators this repro
//! validates against:
//!
//! * **Assignment format** — one file per processor, each line an
//!   operation code and a value: `0 <address>` is a load, `1 <address>` a
//!   store, and `2 <cycles>` counts non-memory instruction cycles between
//!   references (the MESI/Dragon multiprocessor assignment traces).
//! * **Label format** — a single interleaved stream of `<label> <address>`
//!   lines where the label is `l`/`r` (load) or `s`/`w` (store), as in the
//!   lab-style `*.trace` replay harnesses. The stream is sharded
//!   round-robin across a configured number of virtual processors.
//!
//! Addresses are byte addresses in hexadecimal (an optional `0x` prefix is
//! accepted); `2`-line cycle counts are decimal. Blank lines and `#`
//! comments are ignored everywhere.
//!
//! Ingestion is two-pass and streams with bounded memory: a prescan reads
//! each file line by line to validate it, count records per processor,
//! accumulate think-cycle totals, and classify each *block* into the
//! paper's three substreams (referenced by one processor → private; by
//! several, never written → shared read-only; by several with a write →
//! shared-writable). Replay then re-reads the files through per-processor
//! cursors, so memory is proportional to the number of distinct blocks,
//! never the trace length.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use crate::synth::Stream;
use crate::trace::{TraceRecord, TraceSource};

/// Maximum processors a file-backed source supports (sharer sets are
/// tracked as a 64-bit mask during the prescan).
pub const MAX_PROCESSORS: usize = 64;

/// On-disk trace dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Per-processor files of `<0|1|2> <value>` lines.
    Assignment,
    /// Single-stream `<label> <address>` lines.
    Label,
}

impl TraceFormat {
    /// Sniffs the format from the first record line of `path`.
    pub fn detect(path: &Path) -> Result<TraceFormat, IngestError> {
        let file = File::open(path).map_err(|e| IngestError::io(path, &e))?;
        let reader = BufReader::new(file);
        for (idx, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| IngestError::io(path, &e))?;
            let content = line.split('#').next().unwrap_or("");
            let Some((col, token)) = split_tokens(content).into_iter().next() else {
                continue;
            };
            return match token {
                "0" | "1" | "2" => Ok(TraceFormat::Assignment),
                t if t.chars().all(|c| c.is_ascii_alphabetic()) => Ok(TraceFormat::Label),
                t => Err(IngestError::Parse(TraceParseError {
                    path: path.display().to_string(),
                    line: idx + 1,
                    col: col + 1,
                    source: line.clone(),
                    message: format!(
                        "cannot detect trace format from `{t}` (expected 0/1/2 or l/s/r/w)"
                    ),
                })),
            };
        }
        Err(IngestError::Config(format!(
            "{}: trace file has no records to detect a format from",
            path.display()
        )))
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "assignment" | "mesi" | "dragon" => Ok(TraceFormat::Assignment),
            "label" | "lab" => Ok(TraceFormat::Label),
            other => Err(format!(
                "unknown trace format `{other}` (expected assignment, label, or auto)"
            )),
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormat::Assignment => write!(f, "assignment"),
            TraceFormat::Label => write!(f, "label"),
        }
    }
}

/// A trace-file parse failure with full location context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// File the error is in.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// The offending source line, verbatim.
    pub source: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    /// Renders `path:line:col: message` with the source line and a caret,
    /// matching the CLI's `--scenarios` JSON diagnostics.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:{}:{}: {}", self.path, self.line, self.col, self.message)?;
        writeln!(f, "  {}", self.source)?;
        write!(f, "  {:>width$}", "^", width = self.col)
    }
}

impl std::error::Error for TraceParseError {}

/// Why a trace could not be ingested.
#[derive(Debug)]
pub enum IngestError {
    /// Filesystem failure.
    Io {
        /// File involved.
        path: String,
        /// The underlying error.
        message: String,
    },
    /// A line failed to parse.
    Parse(TraceParseError),
    /// The request itself is inconsistent (processor counts, file lists).
    Config(String),
}

impl IngestError {
    fn io(path: &Path, e: &std::io::Error) -> Self {
        IngestError::Io { path: path.display().to_string(), message: e.to_string() }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, message } => write!(f, "{path}: {message}"),
            IngestError::Parse(e) => write!(f, "{e}"),
            IngestError::Config(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<TraceParseError> for IngestError {
    fn from(e: TraceParseError) -> Self {
        IngestError::Parse(e)
    }
}

/// Address-space interpretation knobs for file traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOptions {
    /// Bytes per word — file addresses are byte addresses, the record
    /// model's are word addresses.
    pub bytes_per_word: u64,
    /// Words per cache block (block classification granularity).
    pub words_per_block: u64,
    /// Virtual processors a [`TraceFormat::Label`] stream is sharded
    /// across round-robin. Ignored for assignment traces (one file = one
    /// processor).
    pub processors: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { bytes_per_word: 4, words_per_block: 4, processors: 4 }
    }
}

/// Finds the sibling files of a per-processor trace: given `…_p0.trace`,
/// returns every `…_p<i>.trace` that exists, in processor order. A path
/// without the `_p0` marker is returned alone.
pub fn discover_processor_files(first: &Path) -> Vec<PathBuf> {
    let Some(name) = first.file_name().and_then(|n| n.to_str()) else {
        return vec![first.to_path_buf()];
    };
    let Some(pos) = name.find("_p0") else {
        return vec![first.to_path_buf()];
    };
    let (prefix, suffix) = (&name[..pos], &name[pos + 3..]);
    let mut out = Vec::new();
    for i in 0..MAX_PROCESSORS {
        let sibling = first.with_file_name(format!("{prefix}_p{i}{suffix}"));
        if sibling.is_file() {
            out.push(sibling);
        } else {
            break;
        }
    }
    if out.is_empty() {
        out.push(first.to_path_buf());
    }
    out
}

/// One parsed line.
enum ParsedLine {
    /// A memory reference (byte address).
    Record { address: u64, is_write: bool },
    /// Non-memory instruction cycles (assignment `2` lines).
    Think { cycles: u64 },
}

/// Byte-offset/token pairs of a line's whitespace-separated fields.
fn split_tokens(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in line.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, &line[s..]));
    }
    out
}

/// Parses one raw line (comment stripping included). `Ok(None)` for blank
/// or comment-only lines; `Err((col, message))` locates the problem.
fn parse_line(raw: &str, format: TraceFormat) -> Result<Option<ParsedLine>, (usize, String)> {
    let content = raw.split('#').next().unwrap_or("");
    let tokens = split_tokens(content);
    let Some(&(op_col, op)) = tokens.first() else {
        return Ok(None);
    };
    let value = tokens.get(1).copied();
    if let Some(&(extra_col, extra)) = tokens.get(2) {
        return Err((extra_col + 1, format!("unexpected trailing token `{extra}`")));
    }
    let address = |(col, tok): (usize, &str)| -> Result<u64, (usize, String)> {
        let digits = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")).unwrap_or(tok);
        if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err((col + 1, format!("invalid address `{tok}` (expected hexadecimal)")));
        }
        u64::from_str_radix(digits, 16)
            .map_err(|_| (col + 1, format!("address `{tok}` out of range")))
    };
    let required = |kind: &str| {
        value.ok_or((op_col + op.len() + 1, format!("missing {kind} after `{op}`")))
    };
    match format {
        TraceFormat::Assignment => match op {
            "0" | "1" => {
                let addr = address(required("address")?)?;
                Ok(Some(ParsedLine::Record { address: addr, is_write: op == "1" }))
            }
            "2" => {
                let (col, tok) = required("cycle count")?;
                let cycles = tok
                    .parse::<u64>()
                    .map_err(|_| (col + 1, format!("invalid cycle count `{tok}`")))?;
                Ok(Some(ParsedLine::Think { cycles }))
            }
            other => Err((
                op_col + 1,
                format!("unknown operation `{other}` (expected 0=load, 1=store, 2=cycles)"),
            )),
        },
        TraceFormat::Label => {
            let is_write = match op.to_ascii_lowercase().as_str() {
                "l" | "r" | "load" | "read" => false,
                "s" | "w" | "store" | "write" => true,
                other => {
                    return Err((
                        op_col + 1,
                        format!("unknown label `{other}` (expected l/r=load, s/w=store)"),
                    ))
                }
            };
            let addr = address(required("address")?)?;
            Ok(Some(ParsedLine::Record { address: addr, is_write }))
        }
    }
}

/// A replay cursor over one processor's share of a trace file.
struct Cursor {
    reader: BufReader<File>,
    format: TraceFormat,
    /// Deliver records whose running index `% modulo == phase` (label
    /// sharding; assignment cursors use `modulo = 1`).
    modulo: u64,
    phase: u64,
    index: u64,
    buf: String,
}

impl Cursor {
    fn open(path: &Path, format: TraceFormat, modulo: u64, phase: u64) -> Result<Self, IngestError> {
        let file = File::open(path).map_err(|e| IngestError::io(path, &e))?;
        Ok(Cursor { reader: BufReader::new(file), format, modulo, phase, buf: String::new(), index: 0 })
    }

    /// Next byte-address record owned by this cursor's processor. The
    /// prescan has validated the file, so any residual parse or I/O
    /// failure is treated as end of stream.
    fn next(&mut self) -> Option<(u64, bool)> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) | Err(_) => return None,
                Ok(_) => {}
            }
            match parse_line(&self.buf, self.format) {
                Ok(Some(ParsedLine::Record { address, is_write })) => {
                    let mine = self.index % self.modulo == self.phase;
                    self.index += 1;
                    if mine {
                        return Some((address, is_write));
                    }
                }
                Ok(Some(ParsedLine::Think { .. })) | Ok(None) => {}
                Err(_) => return None,
            }
        }
    }
}

/// A file-backed [`TraceSource`].
///
/// Built by [`FileTrace::open`]; classification and counts come from the
/// prescan, records from streaming per-processor cursors.
pub struct FileTrace {
    format: TraceFormat,
    options: IngestOptions,
    processors: usize,
    /// Block → substream, from the prescan's sharing analysis.
    streams: HashMap<u64, Stream>,
    cursors: Vec<Cursor>,
    counts: Vec<u64>,
    delivered: Vec<u64>,
    tau: Option<f64>,
    distinct_blocks: u64,
}

impl fmt::Debug for FileTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileTrace")
            .field("format", &self.format)
            .field("processors", &self.processors)
            .field("records", &self.counts.iter().sum::<u64>())
            .field("distinct_blocks", &self.distinct_blocks)
            .finish_non_exhaustive()
    }
}

impl FileTrace {
    /// Opens a trace.
    ///
    /// For [`TraceFormat::Assignment`], `paths` is one file per processor
    /// (use [`discover_processor_files`] to expand a `…_p0` family). For
    /// [`TraceFormat::Label`], `paths` must be a single file whose record
    /// stream is sharded across [`IngestOptions::processors`].
    ///
    /// # Errors
    ///
    /// [`IngestError::Config`] for inconsistent requests,
    /// [`IngestError::Io`] for filesystem failures, and
    /// [`IngestError::Parse`] (with line:col context) for malformed lines.
    pub fn open(
        paths: &[PathBuf],
        format: TraceFormat,
        options: IngestOptions,
    ) -> Result<FileTrace, IngestError> {
        if paths.is_empty() {
            return Err(IngestError::Config("no trace files given".into()));
        }
        if options.bytes_per_word == 0 || options.words_per_block == 0 {
            return Err(IngestError::Config(
                "bytes_per_word and words_per_block must be positive".into(),
            ));
        }
        let processors = match format {
            TraceFormat::Assignment => paths.len(),
            TraceFormat::Label => {
                if paths.len() != 1 {
                    return Err(IngestError::Config(format!(
                        "label-format traces are a single file, got {}",
                        paths.len()
                    )));
                }
                options.processors
            }
        };
        if processors == 0 || processors > MAX_PROCESSORS {
            return Err(IngestError::Config(format!(
                "processor count {processors} out of range (1..={MAX_PROCESSORS})"
            )));
        }

        // Prescan: validate, count, and classify blocks by sharing.
        let mut sharers: HashMap<u64, (u64, bool)> = HashMap::new();
        let mut counts = vec![0u64; processors];
        let mut think_cycles = 0u64;
        let mut think_applicable = false;
        let block_of = |byte_address: u64| {
            byte_address / options.bytes_per_word / options.words_per_block
        };
        for (file_idx, path) in paths.iter().enumerate() {
            let file = File::open(path).map_err(|e| IngestError::io(path, &e))?;
            let mut reader = BufReader::new(file);
            let mut buf = String::new();
            let mut line_no = 0usize;
            let mut label_index = 0u64;
            loop {
                buf.clear();
                let read = reader.read_line(&mut buf).map_err(|e| IngestError::io(path, &e))?;
                if read == 0 {
                    break;
                }
                line_no += 1;
                let parsed = parse_line(&buf, format).map_err(|(col, message)| {
                    TraceParseError {
                        path: path.display().to_string(),
                        line: line_no,
                        col,
                        source: buf.trim_end_matches(['\n', '\r']).to_string(),
                        message,
                    }
                })?;
                match parsed {
                    Some(ParsedLine::Record { address, is_write }) => {
                        let p = match format {
                            TraceFormat::Assignment => file_idx,
                            TraceFormat::Label => {
                                let p = (label_index % processors as u64) as usize;
                                label_index += 1;
                                p
                            }
                        };
                        counts[p] += 1;
                        let entry = sharers.entry(block_of(address)).or_insert((0, false));
                        entry.0 |= 1u64 << p;
                        entry.1 |= is_write;
                    }
                    Some(ParsedLine::Think { cycles }) => {
                        think_applicable = true;
                        think_cycles = think_cycles.saturating_add(cycles);
                    }
                    None => {}
                }
            }
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Err(IngestError::Config(format!(
                "{}: trace contains no memory references",
                paths[0].display()
            )));
        }

        let distinct_blocks = sharers.len() as u64;
        let streams = sharers
            .into_iter()
            .map(|(block, (mask, written))| {
                let stream = if mask.count_ones() <= 1 {
                    Stream::Private
                } else if written {
                    Stream::SharedWritable
                } else {
                    Stream::SharedReadOnly
                };
                (block, stream)
            })
            .collect();

        let cursors = match format {
            TraceFormat::Assignment => paths
                .iter()
                .map(|p| Cursor::open(p, format, 1, 0))
                .collect::<Result<Vec<_>, _>>()?,
            TraceFormat::Label => (0..processors)
                .map(|p| Cursor::open(&paths[0], format, processors as u64, p as u64))
                .collect::<Result<Vec<_>, _>>()?,
        };

        Ok(FileTrace {
            format,
            options,
            processors,
            streams,
            cursors,
            counts,
            delivered: vec![0; processors],
            tau: think_applicable.then(|| think_cycles as f64 / total as f64),
            distinct_blocks,
        })
    }

    /// Opens a trace, sniffing the format from the first file.
    pub fn open_auto(paths: &[PathBuf], options: IngestOptions) -> Result<FileTrace, IngestError> {
        let first = paths.first().ok_or_else(|| {
            IngestError::Config("no trace files given".into())
        })?;
        let format = TraceFormat::detect(first)?;
        FileTrace::open(paths, format, options)
    }

    /// The dialect this trace was parsed as.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Memory references per processor, from the prescan.
    pub fn record_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Distinct blocks the trace touches.
    pub fn distinct_blocks(&self) -> u64 {
        self.distinct_blocks
    }
}

impl TraceSource for FileTrace {
    fn processors(&self) -> usize {
        self.processors
    }

    fn words_per_block(&self) -> u64 {
        self.options.words_per_block
    }

    fn next_for(&mut self, processor: usize) -> Option<TraceRecord> {
        let (byte_address, is_write) = self.cursors.get_mut(processor)?.next()?;
        self.delivered[processor] += 1;
        let address = byte_address / self.options.bytes_per_word;
        let block = address / self.options.words_per_block;
        let stream = self.streams.get(&block).copied().unwrap_or(Stream::Private);
        Some(TraceRecord { processor, address, is_write, stream })
    }

    fn remaining_hint(&self, processor: usize) -> Option<u64> {
        let count = *self.counts.get(processor)?;
        Some(count.saturating_sub(self.delivered[processor]))
    }

    fn measured_tau(&self) -> Option<f64> {
        self.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_file(name: &str, content: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let id = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("snoop-ingest-{}-{id}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::write(&path, content).unwrap();
        path
    }

    fn drain<S: TraceSource>(source: &mut S, p: usize) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        while let Some(r) = source.next_for(p) {
            out.push(r);
        }
        out
    }

    #[test]
    fn assignment_traces_classify_sharing_across_files() {
        // Block 0x10 is touched by both processors and written → sw;
        // 0x20 read by both, never written → sro; the rest are private.
        let p0 = temp_file(
            "a_p0.trace",
            "# processor 0\n0 0x100\n1 0x104\n0 0x400\n2 12\n1 0x800\n",
        );
        let p1 = temp_file("a_p1.trace", "0 0x200\n2 8\n0 0x400\n1 0x800\n");
        let mut t = FileTrace::open(
            &[p0, p1],
            TraceFormat::Assignment,
            IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(t.processors(), 2);
        assert_eq!(t.record_counts(), &[4, 3]);
        // tau = (12 + 8) / 7 records.
        assert!((t.measured_tau().unwrap() - 20.0 / 7.0).abs() < 1e-12);

        let r0 = drain(&mut t, 0);
        assert_eq!(r0.len(), 4);
        // Byte 0x100 → word 0x40.
        assert_eq!(r0[0].address, 0x40);
        assert!(!r0[0].is_write);
        assert_eq!(r0[0].stream, Stream::Private);
        assert!(r0[1].is_write);
        // 0x400 (block 0x10) is read-shared; 0x800 (block 0x20) is
        // write-shared.
        assert_eq!(r0[2].stream, Stream::SharedReadOnly);
        assert_eq!(r0[3].stream, Stream::SharedWritable);
        assert_eq!(t.remaining_hint(0), Some(0));
        assert_eq!(t.remaining_hint(1), Some(3));
    }

    #[test]
    fn label_traces_shard_round_robin() {
        let f = temp_file(
            "lab.trace",
            "l 0x1000\ns 0x2000\nl 0x3000\nw 0x4000\nr 0x2000\nl 0x2000\n",
        );
        let options = IngestOptions { processors: 2, ..IngestOptions::default() };
        let mut t = FileTrace::open(&[f], TraceFormat::Label, options).unwrap();
        assert_eq!(t.processors(), 2);
        assert_eq!(t.record_counts(), &[3, 3]);
        assert_eq!(t.measured_tau(), None);

        let r0 = drain(&mut t, 0);
        let r1 = drain(&mut t, 1);
        // Processor 0 gets records 0, 2, 4; processor 1 gets 1, 3, 5.
        assert_eq!(
            r0.iter().map(|r| r.address).collect::<Vec<_>>(),
            vec![0x400, 0xc00, 0x800]
        );
        assert_eq!(
            r1.iter().map(|r| (r.address, r.is_write)).collect::<Vec<_>>(),
            vec![(0x800, true), (0x1000, true), (0x800, false)]
        );
        // 0x1000 is only ever touched by processor 0 → private; 0x2000 is
        // touched by both and written → shared-writable.
        assert_eq!(r0[0].stream, Stream::Private);
        assert_eq!(r1[2].stream, Stream::SharedWritable);
    }

    #[test]
    fn malformed_line_reports_line_col_and_caret() {
        let f = temp_file("bad.trace", "l 0x1000\ns 0x2000\nl 0xZZ\n");
        let err = FileTrace::open(std::slice::from_ref(&f), TraceFormat::Label, IngestOptions::default())
            .unwrap_err();
        let IngestError::Parse(e) = err else { panic!("expected parse error, got {err:?}") };
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 3);
        let rendered = e.to_string();
        assert!(rendered.contains(&format!("{}:3:3: invalid address `0xZZ`", f.display())));
        assert!(rendered.contains("\n  l 0xZZ\n"), "{rendered}");
        assert!(rendered.ends_with("  ^"), "{rendered}");
    }

    #[test]
    fn unknown_operation_and_missing_value_are_located() {
        let f = temp_file("ops.trace", "3 0x10\n");
        let err = FileTrace::open(&[f], TraceFormat::Assignment, IngestOptions::default())
            .unwrap_err();
        let IngestError::Parse(e) = err else { panic!("{err:?}") };
        assert_eq!((e.line, e.col), (1, 1));
        assert!(e.message.contains("unknown operation"));

        let f = temp_file("short.trace", "0 0x10\n1\n");
        let err = FileTrace::open(&[f], TraceFormat::Assignment, IngestOptions::default())
            .unwrap_err();
        let IngestError::Parse(e) = err else { panic!("{err:?}") };
        assert_eq!(e.line, 2);
        assert!(e.message.contains("missing address"));

        let f = temp_file("extra.trace", "l 0x10 junk\n");
        let err =
            FileTrace::open(&[f], TraceFormat::Label, IngestOptions::default()).unwrap_err();
        let IngestError::Parse(e) = err else { panic!("{err:?}") };
        assert_eq!(e.col, 8);
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn format_detection_from_first_record() {
        let a = temp_file("d1.trace", "# comment\n\n0 0x100\n");
        assert_eq!(TraceFormat::detect(&a).unwrap(), TraceFormat::Assignment);
        let l = temp_file("d2.trace", "l 0x100\n");
        assert_eq!(TraceFormat::detect(&l).unwrap(), TraceFormat::Label);
        let bad = temp_file("d3.trace", "? 0x100\n");
        assert!(matches!(TraceFormat::detect(&bad), Err(IngestError::Parse(_))));
    }

    #[test]
    fn discover_finds_processor_family() {
        let p0 = temp_file("fam_p0.trace", "0 0x0\n");
        let dir = p0.parent().unwrap();
        fs::write(dir.join("fam_p1.trace"), "0 0x0\n").unwrap();
        fs::write(dir.join("fam_p2.trace"), "0 0x0\n").unwrap();
        let family = discover_processor_files(&p0);
        assert_eq!(family.len(), 3);
        assert!(family[2].ends_with("fam_p2.trace"));

        let lone = temp_file("solo.trace", "l 0x0\n");
        assert_eq!(discover_processor_files(&lone), vec![lone]);
    }

    #[test]
    fn empty_trace_is_a_config_error() {
        let f = temp_file("empty.trace", "# nothing here\n");
        let err =
            FileTrace::open(&[f], TraceFormat::Label, IngestOptions::default()).unwrap_err();
        assert!(matches!(err, IngestError::Config(_)), "{err:?}");
    }

    #[test]
    fn format_parses_from_str() {
        assert_eq!("assignment".parse::<TraceFormat>().unwrap(), TraceFormat::Assignment);
        assert_eq!("LABEL".parse::<TraceFormat>().unwrap(), TraceFormat::Label);
        assert!("weird".parse::<TraceFormat>().is_err());
    }
}
