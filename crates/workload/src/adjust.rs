//! Per-modification workload-parameter adjustments (Appendix A, notes).
//!
//! The paper's Appendix A prescribes how the workload parameters shift when
//! a protocol modification changes block lifetimes:
//!
//! > "the value of `rep_p` is increased to 0.3 for Modification 1; `rep_sw`
//! > is increased to 0.6 for Modifications 2 or 3, and to 0.7 for a protocol
//! > with both modifications; and, finally, `hit_sw` is set to 0.95 for the
//! > protocol with modifications 1 and 4."
//!
//! The rationale: modification 1 keeps private blocks exclusive so more of
//! them are dirty at replacement; modifications 2 and 3 leave blocks dirty
//! that Write-Once would have written through; modification 4 stops
//! invalidating shared-writable copies, so their hit rate jumps.

use snoop_protocol::{ModSet, Modification};

use crate::params::WorkloadParams;

/// The adjustment magnitudes, exposed so sensitivity studies can vary them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjustments {
    /// `rep_p` under modification 1 (paper: 0.3, up from 0.2).
    pub rep_p_mod1: f64,
    /// `rep_sw` under modification 2 *or* 3 (paper: 0.6, up from 0.5).
    pub rep_sw_mod2_or_3: f64,
    /// `rep_sw` under modifications 2 *and* 3 (paper: 0.7).
    pub rep_sw_mod2_and_3: f64,
    /// `h_sw` under modifications 1 *and* 4 (paper: 0.95, up from 0.5).
    pub h_sw_mod1_and_4: f64,
}

impl Default for Adjustments {
    fn default() -> Self {
        Adjustments {
            rep_p_mod1: 0.3,
            rep_sw_mod2_or_3: 0.6,
            rep_sw_mod2_and_3: 0.7,
            h_sw_mod1_and_4: 0.95,
        }
    }
}

/// Applies the Appendix-A adjustments for `mods` to a copy of `base`.
///
/// Adjustments only ever *raise* the affected parameters, and only when the
/// base value is the one being compensated (i.e. the base is below the
/// adjusted value) — so a caller who has already set, say, `h_sw = 0.99`
/// keeps their value.
pub fn adjusted_params(base: &WorkloadParams, mods: ModSet, adj: &Adjustments) -> WorkloadParams {
    let mut p = *base;
    if mods.contains(Modification::ExclusiveLoad) {
        p.rep_p = p.rep_p.max(adj.rep_p_mod1);
    }
    let m2 = mods.contains(Modification::CacheSupply);
    let m3 = mods.contains(Modification::InvalidateOnWrite);
    if m2 && m3 {
        p.rep_sw = p.rep_sw.max(adj.rep_sw_mod2_and_3);
    } else if m2 || m3 {
        p.rep_sw = p.rep_sw.max(adj.rep_sw_mod2_or_3);
    }
    if mods.contains(Modification::ExclusiveLoad) && mods.contains(Modification::DistributedWrite)
    {
        p.h_sw = p.h_sw.max(adj.h_sw_mod1_and_4);
    }
    p
}

/// Convenience wrapper using the paper's adjustment values.
pub fn paper_adjusted(base: &WorkloadParams, mods: ModSet) -> WorkloadParams {
    adjusted_params(base, mods, &Adjustments::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SharingLevel, WorkloadParams};

    fn base() -> WorkloadParams {
        WorkloadParams::appendix_a(SharingLevel::Five)
    }

    fn mods(numbers: &[u8]) -> ModSet {
        ModSet::from_numbers(numbers).unwrap()
    }

    #[test]
    fn write_once_is_unchanged() {
        assert_eq!(paper_adjusted(&base(), ModSet::new()), base());
    }

    #[test]
    fn mod1_raises_rep_p() {
        let p = paper_adjusted(&base(), mods(&[1]));
        assert_eq!(p.rep_p, 0.3);
        assert_eq!(p.rep_sw, 0.5);
        assert_eq!(p.h_sw, 0.5);
    }

    #[test]
    fn mod2_or_3_raise_rep_sw() {
        assert_eq!(paper_adjusted(&base(), mods(&[2])).rep_sw, 0.6);
        assert_eq!(paper_adjusted(&base(), mods(&[3])).rep_sw, 0.6);
        assert_eq!(paper_adjusted(&base(), mods(&[2, 3])).rep_sw, 0.7);
    }

    #[test]
    fn mod1_and_4_raise_h_sw() {
        let p = paper_adjusted(&base(), mods(&[1, 4]));
        assert_eq!(p.h_sw, 0.95);
        assert_eq!(p.rep_p, 0.3); // mod 1 is present too
        // mod 4 alone does not change h_sw (the paper ties the hit-rate jump
        // to the 1+4 combination it evaluates).
        assert_eq!(paper_adjusted(&base(), mods(&[4])).h_sw, 0.5);
    }

    #[test]
    fn all_mods_compose() {
        let p = paper_adjusted(&base(), ModSet::all());
        assert_eq!(p.rep_p, 0.3);
        assert_eq!(p.rep_sw, 0.7);
        assert_eq!(p.h_sw, 0.95);
    }

    #[test]
    fn user_overrides_are_preserved() {
        let custom = WorkloadParams { h_sw: 0.99, ..base() };
        let p = paper_adjusted(&custom, mods(&[1, 4]));
        assert_eq!(p.h_sw, 0.99);
    }

    #[test]
    fn adjusted_params_still_validate() {
        for set in ModSet::power_set() {
            paper_adjusted(&base(), set).validate().unwrap();
        }
    }
}
