//! Derived model inputs (paper Section 2.3, "From these parameters, the
//! following model inputs can be computed").
//!
//! This module reconstructs the \[VeHo86\] derivation of the MVA inputs from
//! the basic workload parameters, for any modification set:
//!
//! * `p_local` — probability a reference is satisfied entirely in the cache,
//! * `p_bc` — probability a reference issues a broadcast (`write-word` /
//!   `invalidate`) bus operation,
//! * `p_rr` — probability a reference issues a remote `read` / `read-mod`,
//! * `t_read` — mean bus occupancy of a remote read, "which includes main
//!   memory write-back by another cache and/or by the requesting cache, if
//!   necessary",
//! * `p_csupwb|rr` — probability another cache must write the block to
//!   memory in response to the remote read (zero under modification 2),
//! * `p_reqwb|rr` — probability the requesting cache writes back a replaced
//!   block,
//!
//! plus the masses the Appendix-B cache-interference submodel needs.
//!
//! Protocol dependence (paper Section 3.3):
//!
//! * **mod 1** moves the private-write-hit term from `p_bc` to `p_local`;
//! * **mod 2** removes the supplier write-back from `t_read` and the
//!   interference time;
//! * **mod 3** makes broadcasts skip main memory (`bc_updates_memory`);
//! * **mod 4** broadcasts *every* sw write hit (not only the first) and adds
//!   the follow-up broadcast of a write miss that found other copies.

use snoop_protocol::{ModSet, Modification};

use crate::adjust::paper_adjusted;
use crate::params::WorkloadParams;
use crate::streams::ReferenceRates;
use crate::timing::TimingModel;
use crate::WorkloadError;

/// Everything the MVA model (and the GTPN builder) needs to know about the
/// workload under a particular protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInputs {
    /// Mean think time `tau` (cycles).
    pub tau: f64,
    /// `T_supply`: cache service time for the processor request.
    pub t_supply: f64,
    /// `T_write`: bus occupancy of a broadcast (`write-word`/`invalidate`).
    pub t_write: f64,
    /// `d_mem`: total memory-module latency.
    pub d_mem: f64,
    /// Number of interleaved memory modules.
    pub memory_modules: u32,
    /// Probability a reference is handled locally.
    pub p_local: f64,
    /// Expected broadcasts per reference (can exceed the write-hit mass
    /// under modification 4, which also broadcasts after shared write
    /// misses).
    pub p_bc: f64,
    /// Probability a reference needs a remote read / read-mod.
    pub p_rr: f64,
    /// Mean bus occupancy of a remote read (cycles).
    pub t_read: f64,
    /// P(another cache writes the block to memory | remote read).
    pub p_csupwb_rr: f64,
    /// P(the requester writes back a replaced block | remote read).
    pub p_reqwb_rr: f64,
    /// Whether broadcasts update main memory (false under modification 3,
    /// whose `invalidate` — or memory-skipping broadcast with mod 4 —
    /// carries no data to memory).
    pub bc_updates_memory: bool,
    /// Mass of misses to shared blocks (`SRMiss + SWMiss`).
    pub shared_miss_mass: f64,
    /// Mass of broadcasts that concern holders of shared copies (the
    /// private write-through broadcasts of Write-Once do not: no other
    /// cache holds private blocks).
    pub sw_broadcast_mass: f64,
    /// Cache-supply-weighted shared-miss mass
    /// (`csupply_sro·SRMiss + csupply_sw·SWMiss`).
    pub csupply_weighted_mass: f64,
    /// Mass of remote reads whose supplier must also write memory
    /// (zero under modification 2).
    pub dirty_supply_mass: f64,
    /// The Appendix-B retention factor `1 − (rep_p·p_private +
    /// rep_sw·p_sw)`: the probability a previously loaded shared copy is
    /// still resident when the bus request for it arrives.
    pub retention: f64,
    /// Bus cycles of one block transfer (for the interference submodel).
    pub block_cycles: f64,
}

impl ModelInputs {
    /// Derives the model inputs for `params` under protocol `mods`.
    ///
    /// `params` is used exactly as given; callers wanting the paper's
    /// Appendix-A per-modification parameter adjustments should use
    /// [`ModelInputs::derive_adjusted`].
    ///
    /// # Errors
    ///
    /// Propagates validation failures of the parameters and the timing
    /// model.
    pub fn derive(
        params: &WorkloadParams,
        mods: ModSet,
        timing: &TimingModel,
    ) -> Result<Self, WorkloadError> {
        params.validate()?;
        timing.validate()?;

        let r = ReferenceRates::from_params(params);
        let mod1 = mods.contains(Modification::ExclusiveLoad);
        let mod2 = mods.contains(Modification::CacheSupply);
        let mod3 = mods.contains(Modification::InvalidateOnWrite);
        let mod4 = mods.contains(Modification::DistributedWrite);

        // --- reference routing -------------------------------------------
        let mut p_local = r.read_hits() + r.private_write_hit_mod;
        let mut p_bc = 0.0;

        // Private write hits to unmodified blocks: broadcast in Write-Once
        // (the block was loaded non-exclusive), local under modification 1.
        if mod1 {
            p_local += r.private_write_hit_unmod;
        } else {
            p_bc += r.private_write_hit_unmod;
        }

        // Shared-writable write hits: Write-Once broadcasts only the first
        // write (unmodified block); modification 4 broadcasts every write
        // to a non-exclusive block, i.e. (approximately) every sw write hit.
        if mod4 {
            p_bc += r.sw_write_hit_mod + r.sw_write_hit_unmod;
            // A write miss that found other copies fetches with `read` and
            // then broadcasts the word: one extra broadcast per such miss.
            p_bc += r.sw_write_miss * params.csupply_sw;
        } else {
            p_local += r.sw_write_hit_mod;
            p_bc += r.sw_write_hit_unmod;
        }

        let p_rr = r.misses();

        // --- remote-read timing ------------------------------------------
        let csupply_weighted_mass =
            params.csupply_sro * r.sro_miss + params.csupply_sw * r.sw_misses();
        let dirty_supply_mass =
            if mod2 { 0.0 } else { params.csupply_sw * params.wb_csupply * r.sw_misses() };
        let reqwb_mass = params.rep_p * (r.private_misses() + r.sro_miss)
            + params.rep_sw * r.sw_misses();

        let (t_read, p_csupwb_rr, p_reqwb_rr) = if p_rr > 0.0 {
            let frac_cs = csupply_weighted_mass / p_rr;
            let supply = frac_cs * timing.cache_read_cycles()
                + (1.0 - frac_cs) * timing.memory_read_cycles();
            let p_csupwb = dirty_supply_mass / p_rr;
            let p_reqwb = reqwb_mass / p_rr;
            (supply + (p_csupwb + p_reqwb) * timing.writeback_cycles(), p_csupwb, p_reqwb)
        } else {
            (0.0, 0.0, 0.0)
        };

        // --- interference masses -----------------------------------------
        let sw_broadcast_mass = if mod4 {
            r.sw_write_hit_mod + r.sw_write_hit_unmod + r.sw_write_miss * params.csupply_sw
        } else {
            r.sw_write_hit_unmod
        };
        let retention =
            (1.0 - (params.rep_p * params.p_private + params.rep_sw * params.p_sw)).max(0.0);

        Ok(ModelInputs {
            tau: params.tau,
            t_supply: timing.t_supply,
            t_write: timing.t_write,
            d_mem: timing.memory_latency,
            memory_modules: timing.memory_modules(),
            p_local,
            p_bc,
            p_rr,
            t_read,
            p_csupwb_rr,
            p_reqwb_rr,
            bc_updates_memory: !mod3,
            shared_miss_mass: r.shared_misses(),
            sw_broadcast_mass,
            csupply_weighted_mass,
            dirty_supply_mass,
            retention,
            block_cycles: timing.block_cycles(),
        })
    }

    /// Like [`ModelInputs::derive`], but first applies the paper's
    /// Appendix-A parameter adjustments for `mods` (see [`crate::adjust`]).
    /// This is what the Table 4.1 / Figure 4.1 reproductions use.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelInputs::derive`].
    pub fn derive_adjusted(
        params: &WorkloadParams,
        mods: ModSet,
        timing: &TimingModel,
    ) -> Result<Self, WorkloadError> {
        Self::derive(&paper_adjusted(params, mods), mods, timing)
    }

    /// The probability masses routed to the three handling classes plus the
    /// extra mod-4 broadcasts; equals 1 for non-mod-4 protocols.
    pub fn routing_total(&self) -> f64 {
        self.p_local + self.p_bc + self.p_rr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SharingLevel;

    fn inputs(level: SharingLevel, mods: &[u8]) -> ModelInputs {
        ModelInputs::derive_adjusted(
            &WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
            &TimingModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn write_once_five_percent_hand_computed() {
        let i = inputs(SharingLevel::Five, &[]);
        // Hand-computed from the Appendix-A values (see module docs):
        assert!((i.p_bc - 0.084_725).abs() < 1e-9, "p_bc = {}", i.p_bc);
        assert!((i.p_rr - 0.059).abs() < 1e-9, "p_rr = {}", i.p_rr);
        assert!((i.p_local - 0.856_275).abs() < 1e-9, "p_local = {}", i.p_local);
        assert!((i.routing_total() - 1.0).abs() < 1e-9);
        assert!((i.p_csupwb_rr - 0.025_424).abs() < 1e-5);
        assert!((i.p_reqwb_rr - 0.250_847).abs() < 1e-5);
        assert!((i.t_read - 8.669).abs() < 1e-2, "t_read = {}", i.t_read);
        assert!(i.bc_updates_memory);
    }

    #[test]
    fn write_once_twenty_percent_hand_computed() {
        // Independent hand derivation for the 20% sharing level:
        //   p_bc   = 0.8·0.3·0.95·0.3 + 0.05·0.5·0.5·0.7 = 0.0684 + 0.00875
        //   p_rr   = 0.028 + 0.012 + 0.0075 + 0.0125 + 0.0125 = 0.0725
        //   cs_w   = 0.95·0.0075 + 0.5·0.025 = 0.0196
        //   frac   = 0.2707 → supply = 0.2707·4 + 0.7293·8 = 6.917
        //   csupwb = 0.025·0.5·0.3/0.0725 = 0.0517
        //   reqwb  = (0.2·0.0475 + 0.5·0.025)/0.0725 = 0.3034
        //   t_read = 6.917 + (0.0517 + 0.3034)·4 = 8.338
        let i = inputs(SharingLevel::Twenty, &[]);
        assert!((i.p_bc - 0.077_15).abs() < 1e-9, "p_bc = {}", i.p_bc);
        assert!((i.p_rr - 0.0725).abs() < 1e-9, "p_rr = {}", i.p_rr);
        assert!((i.p_csupwb_rr - 0.051_724).abs() < 1e-5);
        assert!((i.p_reqwb_rr - 0.303_448).abs() < 1e-5);
        assert!((i.t_read - 8.338).abs() < 5e-3, "t_read = {}", i.t_read);
        assert!((i.routing_total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn routing_sums_to_one_without_mod4() {
        for level in SharingLevel::ALL {
            for mods in [&[][..], &[1], &[2], &[3], &[1, 2, 3]] {
                let i = inputs(level, mods);
                assert!(
                    (i.routing_total() - 1.0).abs() < 1e-9,
                    "{level} {mods:?}: {}",
                    i.routing_total()
                );
            }
        }
    }

    #[test]
    fn mod1_moves_private_write_hits_to_local() {
        let wo = inputs(SharingLevel::Five, &[]);
        let m1 = inputs(SharingLevel::Five, &[1]);
        assert!(m1.p_bc < wo.p_bc);
        assert!(m1.p_local > wo.p_local);
        // Only the sw broadcast term remains.
        assert!((m1.p_bc - 0.003_5).abs() < 1e-9, "p_bc = {}", m1.p_bc);
        // rep_p rises 0.2 → 0.3, so t_read grows slightly.
        assert!(m1.t_read > wo.t_read);
    }

    #[test]
    fn mod2_removes_supplier_writeback() {
        let wo = inputs(SharingLevel::Five, &[]);
        let m2 = inputs(SharingLevel::Five, &[2]);
        assert_eq!(m2.p_csupwb_rr, 0.0);
        assert_eq!(m2.dirty_supply_mass, 0.0);
        assert!(wo.p_csupwb_rr > 0.0);
        // rep_sw rises, partially offsetting the removed supplier term.
        assert!(m2.p_reqwb_rr > wo.p_reqwb_rr);
    }

    #[test]
    fn mod3_broadcasts_skip_memory() {
        let m3 = inputs(SharingLevel::Five, &[3]);
        assert!(!m3.bc_updates_memory);
        // Same broadcast mass as Write-Once (invalidate replaces write-word
        // one-for-one).
        let wo = inputs(SharingLevel::Five, &[]);
        assert!((m3.p_bc - wo.p_bc).abs() < 1e-12);
    }

    #[test]
    fn mod4_broadcasts_every_sw_write() {
        let m1 = inputs(SharingLevel::Five, &[1]);
        let m14 = inputs(SharingLevel::Five, &[1, 4]);
        // h_sw jumps to 0.95, so misses drop...
        assert!(m14.p_rr < m1.p_rr);
        // ...but every sw write hit broadcasts, so p_bc grows.
        assert!(m14.p_bc > m1.p_bc);
        // Expected: all sw write hits (0.02·0.5·0.95, h_sw adjusted to 0.95)
        // plus the shared write-miss broadcasts (0.02·0.5·0.05·csupply 0.5).
        let expected = 0.02 * 0.5 * 0.95 + 0.02 * 0.5 * 0.05 * 0.5;
        assert!((m14.p_bc - expected).abs() < 1e-9, "p_bc = {}", m14.p_bc);
    }

    #[test]
    fn zero_sharing_printed_variant_has_zero_sw_masses() {
        let i = ModelInputs::derive(
            &WorkloadParams::appendix_a_printed_one_percent(),
            ModSet::new(),
            &TimingModel::default(),
        )
        .unwrap();
        assert_eq!(i.sw_broadcast_mass, 0.0);
        assert_eq!(i.dirty_supply_mass, 0.0);
        assert!(i.shared_miss_mass > 0.0);
    }

    #[test]
    fn perfect_cache_has_no_bus_traffic() {
        let p = WorkloadParams::builder()
            .h_private(1.0)
            .h_sro(1.0)
            .h_sw(1.0)
            .amod_private(1.0)
            .amod_sw(1.0)
            .build()
            .unwrap();
        let i = ModelInputs::derive(&p, ModSet::new(), &TimingModel::default()).unwrap();
        assert_eq!(i.p_rr, 0.0);
        assert_eq!(i.p_bc, 0.0);
        assert_eq!(i.t_read, 0.0);
        assert!((i.p_local - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stress_workload_masses() {
        let i = ModelInputs::derive(
            &WorkloadParams::stress(),
            ModSet::new(),
            &TimingModel::default(),
        )
        .unwrap();
        // csupply = 1 everywhere: every shared miss is cache-supplied.
        assert!((i.csupply_weighted_mass - i.shared_miss_mass).abs() < 1e-12);
        // rep = 0: no replacement write-backs.
        assert_eq!(i.p_reqwb_rr, 0.0);
        assert_eq!(i.retention, 1.0);
    }

    #[test]
    fn t_read_grows_with_sharing_for_fixed_supply_speed() {
        // With cache supply as fast as memory supply, more sharing means
        // more dirty-supplier and sw write-backs, so t_read rises.
        let slow_cache = TimingModel { address_cycles: 4.0, ..TimingModel::default() };
        let one = ModelInputs::derive(
            &WorkloadParams::appendix_a(SharingLevel::One),
            ModSet::new(),
            &slow_cache,
        )
        .unwrap();
        let twenty = ModelInputs::derive(
            &WorkloadParams::appendix_a(SharingLevel::Twenty),
            ModSet::new(),
            &slow_cache,
        )
        .unwrap();
        assert!(twenty.p_rr > one.p_rr);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let bad = WorkloadParams { h_sw: 2.0, ..WorkloadParams::default() };
        assert!(ModelInputs::derive(&bad, ModSet::new(), &TimingModel::default()).is_err());
        let bad_timing = TimingModel { memory_latency: -1.0, ..TimingModel::default() };
        assert!(ModelInputs::derive(
            &WorkloadParams::default(),
            ModSet::new(),
            &bad_timing
        )
        .is_err());
    }
}
