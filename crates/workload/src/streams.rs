//! Per-reference event masses.
//!
//! Every downstream model (the MVA input derivation, the interference
//! submodel, the reference sampler for the simulator) consumes the workload
//! as a set of *masses*: the unconditional probability, per memory
//! reference, of each elementary event. This module computes them once from
//! the basic parameters.

use crate::params::WorkloadParams;

/// The elementary event masses of the three-stream workload. All fields are
/// unconditional probabilities per memory reference; grouped sums are
/// provided as methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceRates {
    /// Private read hit.
    pub private_read_hit: f64,
    /// Private write hit finding the block already modified (local).
    pub private_write_hit_mod: f64,
    /// Private write hit finding the block unmodified (Write-Once: first
    /// write, announced on the bus).
    pub private_write_hit_unmod: f64,
    /// Private read miss.
    pub private_read_miss: f64,
    /// Private write miss.
    pub private_write_miss: f64,
    /// Shared read-only hit.
    pub sro_hit: f64,
    /// Shared read-only miss.
    pub sro_miss: f64,
    /// Shared-writable read hit.
    pub sw_read_hit: f64,
    /// Shared-writable write hit finding the block already modified.
    pub sw_write_hit_mod: f64,
    /// Shared-writable write hit finding the block unmodified.
    pub sw_write_hit_unmod: f64,
    /// Shared-writable read miss.
    pub sw_read_miss: f64,
    /// Shared-writable write miss.
    pub sw_write_miss: f64,
}

impl ReferenceRates {
    /// Computes the masses from the basic parameters.
    ///
    /// The decomposition follows Section 2.3: the private and sw streams
    /// split by read/write (`r_private`, `r_sw`), then by hit/miss (the `h`
    /// parameters), then write hits by already-modified (`amod`); the sro
    /// stream is read-only.
    pub fn from_params(p: &WorkloadParams) -> Self {
        let pw = p.p_private * (1.0 - p.r_private);
        let sww = p.p_sw * (1.0 - p.r_sw);
        ReferenceRates {
            private_read_hit: p.p_private * p.r_private * p.h_private,
            private_write_hit_mod: pw * p.h_private * p.amod_private,
            private_write_hit_unmod: pw * p.h_private * (1.0 - p.amod_private),
            private_read_miss: p.p_private * p.r_private * (1.0 - p.h_private),
            private_write_miss: pw * (1.0 - p.h_private),
            sro_hit: p.p_sro * p.h_sro,
            sro_miss: p.p_sro * (1.0 - p.h_sro),
            sw_read_hit: p.p_sw * p.r_sw * p.h_sw,
            sw_write_hit_mod: sww * p.h_sw * p.amod_sw,
            sw_write_hit_unmod: sww * p.h_sw * (1.0 - p.amod_sw),
            sw_read_miss: p.p_sw * p.r_sw * (1.0 - p.h_sw),
            sw_write_miss: sww * (1.0 - p.h_sw),
        }
    }

    /// All read hits (always satisfied locally).
    pub fn read_hits(&self) -> f64 {
        self.private_read_hit + self.sro_hit + self.sw_read_hit
    }

    /// All misses (each requires a `read` or `read-mod` bus transaction).
    pub fn misses(&self) -> f64 {
        self.private_read_miss
            + self.private_write_miss
            + self.sro_miss
            + self.sw_read_miss
            + self.sw_write_miss
    }

    /// Misses in the private stream.
    pub fn private_misses(&self) -> f64 {
        self.private_read_miss + self.private_write_miss
    }

    /// Misses to shared blocks (sro + sw) — the ones other caches may hold.
    pub fn shared_misses(&self) -> f64 {
        self.sro_miss + self.sw_read_miss + self.sw_write_miss
    }

    /// Misses in the shared-writable stream (the paper's `SWMiss`).
    pub fn sw_misses(&self) -> f64 {
        self.sw_read_miss + self.sw_write_miss
    }

    /// Sum of all masses; equals 1 for valid parameters (every reference is
    /// exactly one elementary event).
    pub fn total(&self) -> f64 {
        self.read_hits()
            + self.private_write_hit_mod
            + self.private_write_hit_unmod
            + self.sw_write_hit_mod
            + self.sw_write_hit_unmod
            + self.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SharingLevel, WorkloadParams};

    #[test]
    fn masses_sum_to_one() {
        for level in SharingLevel::ALL {
            let r = ReferenceRates::from_params(&WorkloadParams::appendix_a(level));
            assert!((r.total() - 1.0).abs() < 1e-12, "{level}: {}", r.total());
        }
        let r = ReferenceRates::from_params(&WorkloadParams::stress());
        assert!((r.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn five_percent_spot_values() {
        let r = ReferenceRates::from_params(&WorkloadParams::appendix_a(SharingLevel::Five));
        // p_private·r_private·(1-h_private) = 0.95·0.7·0.05
        assert!((r.private_read_miss - 0.033_25).abs() < 1e-12);
        // p_private·(1-r)·h·(1-amod) = 0.95·0.3·0.95·0.3
        assert!((r.private_write_hit_unmod - 0.081_225).abs() < 1e-12);
        // sro: 0.03·0.05
        assert!((r.sro_miss - 0.001_5).abs() < 1e-12);
        // sw write miss: 0.02·0.5·0.5
        assert!((r.sw_write_miss - 0.005).abs() < 1e-12);
        assert!((r.misses() - 0.059).abs() < 1e-9);
    }

    #[test]
    fn sro_stream_is_read_only() {
        let r = ReferenceRates::from_params(&WorkloadParams::default());
        // No sro write masses exist by construction; its hit+miss equals p_sro.
        assert!((r.sro_hit + r.sro_miss - 0.03).abs() < 1e-12);
    }

    #[test]
    fn zero_sharing_has_no_shared_masses() {
        let p = WorkloadParams::appendix_a_printed_one_percent();
        let r = ReferenceRates::from_params(&p);
        assert_eq!(r.sw_misses(), 0.0);
        assert_eq!(r.sw_write_hit_unmod, 0.0);
        assert!(r.shared_misses() > 0.0); // sro still misses
    }

    #[test]
    fn stress_workload_has_heavy_sw_misses() {
        let r = ReferenceRates::from_params(&WorkloadParams::stress());
        // p_sw=0.2, h_sw=0.1 → 0.18 of all references are sw misses.
        assert!((r.sw_misses() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn grouped_sums_are_consistent() {
        let r = ReferenceRates::from_params(&WorkloadParams::default());
        assert!(
            (r.misses() - (r.private_misses() + r.shared_misses())).abs() < 1e-15
        );
        assert!((r.shared_misses() - (r.sro_miss + r.sw_misses())).abs() < 1e-15);
    }
}
