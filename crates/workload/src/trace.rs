//! Synthetic address-trace generation for the trace-driven simulator mode.
//!
//! The paper's workload is purely probabilistic, but independent studies it
//! compares against (\[ArBa86\], \[KEWP85\]) are trace-driven. To let the
//! simulator run in a trace-driven mode (real set-associative caches with
//! LRU replacement, emergent hit rates), this module synthesizes address
//! streams with the same three-substream structure: each processor owns a
//! private block pool, all processors share an sro pool and an sw pool, and
//! temporal locality is produced with an LRU-stack re-reference model whose
//! re-use probability maps (approximately) onto the paper's hit-rate
//! parameters.

use rand::{Rng, RngExt};

use crate::params::WorkloadParams;
use crate::synth::Stream;

/// One trace record: a processor touching a word address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Issuing processor.
    pub processor: usize,
    /// Word address.
    pub address: u64,
    /// Whether the access is a write.
    pub is_write: bool,
    /// Substream the address belongs to (derivable from the address map;
    /// carried for convenience).
    pub stream: Stream,
}

/// A stream of memory references that can drive the trace-driven simulator
/// or the workload-parameter estimator.
///
/// This is the seam between *where references come from* and *what consumes
/// them*: the synthetic [`TraceGenerator`] is one implementor, and the
/// file-backed readers in [`crate::ingest`] are others. Consumers pull
/// records per processor so that interleaving is under their control (the
/// simulator interleaves by simulated time, the estimator round-robins).
///
/// Implementations must stream with bounded memory: a conforming source
/// never needs to materialize the whole trace, only per-processor cursors
/// and whatever classification state it builds up front.
pub trait TraceSource {
    /// Number of processors issuing references.
    fn processors(&self) -> usize;

    /// Words per block of the address space the records refer to.
    ///
    /// Consumers use this to map the word addresses in [`TraceRecord`]s to
    /// cache blocks.
    fn words_per_block(&self) -> u64;

    /// Produces the next reference issued by `processor`, or `None` once
    /// that processor's stream is exhausted. Synthetic sources are
    /// inexhaustible and never return `None`.
    fn next_for(&mut self, processor: usize) -> Option<TraceRecord>;

    /// How many references `processor` still has, when the source knows
    /// (file-backed sources count during their prescan; synthetic sources
    /// return `None` = unbounded).
    fn remaining_hint(&self, processor: usize) -> Option<u64> {
        let _ = processor;
        None
    }

    /// Mean processing (think) cycles between references, when the source
    /// carries that information — e.g. assignment-format traces interleave
    /// non-memory instruction counts, and the synthetic generator knows its
    /// configured `tau`. `None` when the trace has no timing content.
    fn measured_tau(&self) -> Option<f64> {
        None
    }
}

/// Configuration of the synthetic address space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of processors.
    pub processors: usize,
    /// Words per block (block-aligned addressing).
    pub words_per_block: u64,
    /// Blocks in each processor's private pool.
    pub private_blocks: u64,
    /// Blocks in the shared read-only pool.
    pub sro_blocks: u64,
    /// Blocks in the shared-writable pool.
    pub sw_blocks: u64,
    /// Depth of the per-stream LRU re-reference stack.
    pub locality_depth: usize,
    /// Probability that a reference continues a sequential run (next word
    /// of the previous address in the same stream) — spatial locality, as
    /// in the \[ArBa86\] traces. 0 disables it.
    pub sequential_run: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            processors: 4,
            words_per_block: 4,
            private_blocks: 4096,
            sro_blocks: 1024,
            sw_blocks: 256,
            locality_depth: 64,
            sequential_run: 0.3,
        }
    }
}

/// Layout of the synthetic address space (word addresses).
///
/// `[0, private_span)` is carved into one private region per processor;
/// the sro pool follows, then the sw pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressMap {
    config: TraceConfig,
}

impl AddressMap {
    /// Builds the map for a configuration.
    pub fn new(config: TraceConfig) -> Self {
        AddressMap { config }
    }

    fn private_words_per_cpu(&self) -> u64 {
        self.config.private_blocks * self.config.words_per_block
    }

    fn sro_base(&self) -> u64 {
        self.private_words_per_cpu() * self.config.processors as u64
    }

    fn sw_base(&self) -> u64 {
        self.sro_base() + self.config.sro_blocks * self.config.words_per_block
    }

    /// Total words in the address space.
    pub fn total_words(&self) -> u64 {
        self.sw_base() + self.config.sw_blocks * self.config.words_per_block
    }

    /// Word address of private block `block` of `processor`.
    pub fn private_address(&self, processor: usize, block: u64, word: u64) -> u64 {
        debug_assert!(block < self.config.private_blocks);
        processor as u64 * self.private_words_per_cpu()
            + block * self.config.words_per_block
            + word
    }

    /// Word address of sro block `block`.
    pub fn sro_address(&self, block: u64, word: u64) -> u64 {
        debug_assert!(block < self.config.sro_blocks);
        self.sro_base() + block * self.config.words_per_block + word
    }

    /// Word address of sw block `block`.
    pub fn sw_address(&self, block: u64, word: u64) -> u64 {
        debug_assert!(block < self.config.sw_blocks);
        self.sw_base() + block * self.config.words_per_block + word
    }

    /// Classifies a word address back into its substream.
    pub fn classify(&self, address: u64) -> Stream {
        if address < self.sro_base() {
            Stream::Private
        } else if address < self.sw_base() {
            Stream::SharedReadOnly
        } else {
            Stream::SharedWritable
        }
    }
}

/// Per-stream LRU stack used to synthesize temporal locality.
#[derive(Debug, Clone)]
struct LocalityStack {
    recent: Vec<u64>,
    depth: usize,
}

impl LocalityStack {
    fn new(depth: usize) -> Self {
        LocalityStack { recent: Vec::with_capacity(depth), depth }
    }

    fn touch(&mut self, block: u64) {
        if let Some(pos) = self.recent.iter().position(|&b| b == block) {
            self.recent.remove(pos);
        }
        self.recent.insert(0, block);
        self.recent.truncate(self.depth);
    }

    /// Picks a recently used block (geometric preference for the most
    /// recent), or `None` if the stack is empty.
    fn pick<R: Rng>(&self, rng: &mut R) -> Option<u64> {
        if self.recent.is_empty() {
            return None;
        }
        let mut idx = 0usize;
        while idx + 1 < self.recent.len() && rng.random_bool(0.5) {
            idx += 1;
        }
        Some(self.recent[idx])
    }
}

/// Generates a merged synthetic trace for all processors.
#[derive(Debug, Clone)]
pub struct TraceGenerator<R> {
    params: WorkloadParams,
    map: AddressMap,
    config: TraceConfig,
    rng: R,
    // One private stack per processor, one shared stack per shared pool per
    // processor (locality is a property of the referencing processor).
    private_stacks: Vec<LocalityStack>,
    sro_stacks: Vec<LocalityStack>,
    sw_stacks: Vec<LocalityStack>,
    /// Last word offset referenced per processor per stream (sequential
    /// runs continue from here).
    last_word: Vec<[Option<(u64, u64)>; 3]>,
    next_processor: usize,
}

impl<R: Rng> TraceGenerator<R> {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation or `config.processors == 0`.
    pub fn new(params: WorkloadParams, config: TraceConfig, rng: R) -> Self {
        params.validate().expect("workload parameters must be valid");
        assert!(config.processors > 0, "need at least one processor");
        let stacks = |_| LocalityStack::new(config.locality_depth);
        TraceGenerator {
            params,
            map: AddressMap::new(config),
            config,
            rng,
            private_stacks: (0..config.processors).map(stacks).collect(),
            sro_stacks: (0..config.processors).map(stacks).collect(),
            sw_stacks: (0..config.processors).map(stacks).collect(),
            last_word: vec![[None; 3]; config.processors],
            next_processor: 0,
        }
    }

    /// The address map in use.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Generates the next record, round-robining processors (interleaved
    /// trace as in \[ArBa86\]).
    pub fn next_record(&mut self) -> TraceRecord {
        let processor = self.next_processor;
        self.next_processor = (self.next_processor + 1) % self.config.processors;
        self.record_for(processor)
    }

    /// Generates the next record for a specific processor.
    pub fn record_for(&mut self, processor: usize) -> TraceRecord {
        assert!(processor < self.config.processors, "processor out of range");
        let p = self.params;
        let u: f64 = self.rng.random();
        let (stream, reuse, pool, is_write) = if u < p.p_private {
            let w = !self.rng.random_bool(p.r_private);
            (Stream::Private, p.h_private, self.config.private_blocks, w)
        } else if u < p.p_private + p.p_sro {
            (Stream::SharedReadOnly, p.h_sro, self.config.sro_blocks, false)
        } else {
            let w = !self.rng.random_bool(p.r_sw);
            (Stream::SharedWritable, p.h_sw, self.config.sw_blocks, w)
        };

        let stream_idx = match stream {
            Stream::Private => 0,
            Stream::SharedReadOnly => 1,
            Stream::SharedWritable => 2,
        };
        // Spatial locality: continue a sequential run with the configured
        // probability (advancing one word, wrapping within the pool).
        if self.config.sequential_run > 0.0 && self.rng.random_bool(self.config.sequential_run)
        {
            if let Some((block, word)) = self.last_word[processor][stream_idx] {
                let (block, word) = if word + 1 < self.config.words_per_block {
                    (block, word + 1)
                } else {
                    ((block + 1) % pool, 0)
                };
                self.last_word[processor][stream_idx] = Some((block, word));
                let stack = match stream {
                    Stream::Private => &mut self.private_stacks[processor],
                    Stream::SharedReadOnly => &mut self.sro_stacks[processor],
                    Stream::SharedWritable => &mut self.sw_stacks[processor],
                };
                stack.touch(block);
                let address = match stream {
                    Stream::Private => self.map.private_address(processor, block, word),
                    Stream::SharedReadOnly => self.map.sro_address(block, word),
                    Stream::SharedWritable => self.map.sw_address(block, word),
                };
                return TraceRecord { processor, address, is_write, stream };
            }
        }
        let stack = match stream {
            Stream::Private => &mut self.private_stacks[processor],
            Stream::SharedReadOnly => &mut self.sro_stacks[processor],
            Stream::SharedWritable => &mut self.sw_stacks[processor],
        };
        // With probability ≈ the hit rate re-reference a recent block,
        // otherwise jump to a uniformly random block of the pool.
        let block = if self.rng.random_bool(reuse) {
            stack.pick(&mut self.rng).unwrap_or_else(|| self.rng.random_range(0..pool))
        } else {
            self.rng.random_range(0..pool)
        };
        stack.touch(block);

        let word = self.rng.random_range(0..self.config.words_per_block);
        self.last_word[processor][stream_idx] = Some((block, word));
        let address = match stream {
            Stream::Private => self.map.private_address(processor, block, word),
            Stream::SharedReadOnly => self.map.sro_address(block, word),
            Stream::SharedWritable => self.map.sw_address(block, word),
        };
        TraceRecord { processor, address, is_write, stream }
    }
}

impl<R: Rng> TraceSource for TraceGenerator<R> {
    fn processors(&self) -> usize {
        self.config.processors
    }

    fn words_per_block(&self) -> u64 {
        self.config.words_per_block
    }

    fn next_for(&mut self, processor: usize) -> Option<TraceRecord> {
        Some(self.record_for(processor))
    }

    fn measured_tau(&self) -> Option<f64> {
        Some(self.params.tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generator_is_an_inexhaustible_trace_source() {
        let mut g = generator(7);
        let mut direct = generator(7);
        assert_eq!(TraceSource::processors(&g), 4);
        assert_eq!(g.words_per_block(), 4);
        assert_eq!(g.measured_tau(), Some(WorkloadParams::default().tau));
        assert_eq!(g.remaining_hint(0), None);
        for p in [0usize, 3, 1] {
            assert_eq!(g.next_for(p), Some(direct.record_for(p)));
        }
    }

    fn generator(seed: u64) -> TraceGenerator<SmallRng> {
        TraceGenerator::new(
            WorkloadParams::default(),
            TraceConfig::default(),
            SmallRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn address_regions_do_not_overlap() {
        let map = AddressMap::new(TraceConfig::default());
        let a = map.private_address(3, 4095, 3);
        assert_eq!(map.classify(a), Stream::Private);
        let b = map.sro_address(0, 0);
        assert_eq!(map.classify(b), Stream::SharedReadOnly);
        assert!(b > a);
        let c = map.sw_address(255, 3);
        assert_eq!(map.classify(c), Stream::SharedWritable);
        assert!(c < map.total_words());
    }

    #[test]
    fn classify_round_trips_generated_addresses() {
        let mut g = generator(1);
        for _ in 0..20_000 {
            let r = g.next_record();
            assert_eq!(g.address_map().classify(r.address), r.stream);
        }
    }

    #[test]
    fn stream_mix_matches_parameters() {
        let mut g = generator(2);
        let n = 200_000;
        let mut private = 0u32;
        let mut sw = 0u32;
        for _ in 0..n {
            match g.next_record().stream {
                Stream::Private => private += 1,
                Stream::SharedWritable => sw += 1,
                Stream::SharedReadOnly => {}
            }
        }
        assert!((private as f64 / n as f64 - 0.95).abs() < 0.005);
        assert!((sw as f64 / n as f64 - 0.02).abs() < 0.003);
    }

    #[test]
    fn sro_records_are_never_writes() {
        let mut g = generator(3);
        for _ in 0..50_000 {
            let r = g.next_record();
            if r.stream == Stream::SharedReadOnly {
                assert!(!r.is_write);
            }
        }
    }

    #[test]
    fn round_robin_covers_all_processors() {
        let mut g = generator(4);
        let mut seen = [false; 4];
        for _ in 0..8 {
            seen[g.next_record().processor] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn private_addresses_are_disjoint_across_processors() {
        let map = AddressMap::new(TraceConfig::default());
        let hi0 = map.private_address(0, 4095, 3);
        let lo1 = map.private_address(1, 0, 0);
        assert!(hi0 < lo1);
    }

    #[test]
    fn locality_produces_reuse() {
        // With high reuse probability, consecutive same-stream references
        // should frequently repeat blocks.
        let params = WorkloadParams::builder()
            .streams(1.0, 0.0, 0.0)
            .h_private(0.95)
            .build()
            .unwrap();
        let mut g = TraceGenerator::new(
            params,
            TraceConfig { processors: 1, ..TraceConfig::default() },
            SmallRng::seed_from_u64(5),
        );
        let n = 20_000;
        let mut repeats = 0u32;
        let mut last_block = u64::MAX;
        for _ in 0..n {
            let r = g.next_record();
            let block = r.address / 4;
            if block == last_block {
                repeats += 1;
            }
            last_block = block;
        }
        // Far more repeats than the uniform-random baseline (~1/4096).
        assert!(repeats as f64 / n as f64 > 0.1, "repeats {repeats}");
    }

    #[test]
    fn sequential_runs_produce_adjacent_addresses() {
        let params = WorkloadParams::builder().streams(1.0, 0.0, 0.0).build().unwrap();
        let adjacency = |sequential_run: f64| {
            let config =
                TraceConfig { processors: 1, sequential_run, ..TraceConfig::default() };
            let mut g = TraceGenerator::new(params, config, SmallRng::seed_from_u64(9));
            let n = 20_000;
            let mut adjacent = 0u32;
            let mut last = None;
            for _ in 0..n {
                let r = g.next_record();
                if let Some(prev) = last {
                    if r.address == prev + 1 {
                        adjacent += 1;
                    }
                }
                last = Some(r.address);
            }
            adjacent as f64 / n as f64
        };
        // With sequential_run = 0.9 most references continue the run; with
        // it disabled, adjacency is rare.
        assert!(adjacency(0.9) > 0.6, "high {}", adjacency(0.9));
        assert!(adjacency(0.0) < 0.3, "low {}", adjacency(0.0));
    }

    #[test]
    fn sequential_runs_stay_in_their_region() {
        let mut g = TraceGenerator::new(
            WorkloadParams::default(),
            TraceConfig { sequential_run: 0.8, ..TraceConfig::default() },
            SmallRng::seed_from_u64(10),
        );
        for _ in 0..30_000 {
            let r = g.next_record();
            assert_eq!(g.address_map().classify(r.address), r.stream);
            assert!(r.address < g.address_map().total_words());
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = TraceGenerator::new(
            WorkloadParams::default(),
            TraceConfig { processors: 0, ..TraceConfig::default() },
            SmallRng::seed_from_u64(0),
        );
    }
}
