//! Basic workload parameters (paper Section 2.3, values from Appendix A).

use std::fmt;

use crate::WorkloadError;

/// The three sharing levels studied in the paper's evaluation (Section 4:
/// "Results for each of the three levels of sharing considered in the GTPN
/// study (1%, 5%, and 20%)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingLevel {
    /// 1% of references touch shared blocks.
    One,
    /// 5% of references touch shared blocks.
    Five,
    /// 20% of references touch shared blocks.
    Twenty,
}

impl SharingLevel {
    /// All three levels in ascending order.
    pub const ALL: [SharingLevel; 3] = [SharingLevel::One, SharingLevel::Five, SharingLevel::Twenty];

    /// The fraction of references to shared (sro + sw) blocks.
    pub fn fraction(self) -> f64 {
        match self {
            SharingLevel::One => 0.01,
            SharingLevel::Five => 0.05,
            SharingLevel::Twenty => 0.20,
        }
    }

    /// `(p_private, p_sro, p_sw)` for this level.
    ///
    /// The 5% and 20% splits are as printed in Appendix A. The printed 1%
    /// column reads `(0.99, 0.01, 0.00)`, but `p_sw = 0` contradicts Table
    /// 4.1(c), where modification 4 (which only affects shared-writable
    /// references) visibly improves the 1% curve; we therefore split the 1%
    /// evenly as `(0.99, 0.005, 0.005)`. The printed variant is available as
    /// [`WorkloadParams::appendix_a_printed_one_percent`].
    pub fn stream_probabilities(self) -> (f64, f64, f64) {
        match self {
            SharingLevel::One => (0.99, 0.005, 0.005),
            SharingLevel::Five => (0.95, 0.03, 0.02),
            SharingLevel::Twenty => (0.80, 0.15, 0.05),
        }
    }
}

impl fmt::Display for SharingLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}%",
            match self {
                SharingLevel::One => 1,
                SharingLevel::Five => 5,
                SharingLevel::Twenty => 20,
            }
        )
    }
}

/// The basic workload parameters of the paper (Section 2.3), using the
/// paper's own names.
///
/// Construct via [`WorkloadParams::appendix_a`] (and the other presets) or
/// [`WorkloadParams::builder`]; every constructor validates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Mean processor execution time between memory requests, in cycles
    /// (exponentially distributed). Appendix A: 2.5.
    pub tau: f64,
    /// Probability a reference is to a private block.
    pub p_private: f64,
    /// Probability a reference is to a shared read-only block.
    pub p_sro: f64,
    /// Probability a reference is to a shared-writable block.
    pub p_sw: f64,
    /// Hit rate of the private stream.
    pub h_private: f64,
    /// Hit rate of the shared read-only stream.
    pub h_sro: f64,
    /// Hit rate of the shared-writable stream.
    pub h_sw: f64,
    /// Probability a private reference is a read.
    pub r_private: f64,
    /// Probability a shared-writable reference is a read.
    pub r_sw: f64,
    /// Probability a private write hit finds the block already modified.
    pub amod_private: f64,
    /// Probability a shared-writable write hit finds the block already
    /// modified.
    pub amod_sw: f64,
    /// Probability a requested sro block is in at least one other cache.
    pub csupply_sro: f64,
    /// Probability a requested sw block is in at least one other cache.
    pub csupply_sw: f64,
    /// Probability the cache supplier holds the block in state *wback*.
    pub wb_csupply: f64,
    /// Probability a private (or sro — see `derived`) block being purged
    /// must be written back.
    pub rep_p: f64,
    /// Probability a shared-writable block being purged must be written
    /// back.
    pub rep_sw: f64,
}

impl WorkloadParams {
    /// The Appendix-A parameter values at the given sharing level.
    pub fn appendix_a(level: SharingLevel) -> Self {
        let (p_private, p_sro, p_sw) = level.stream_probabilities();
        WorkloadParams {
            tau: 2.5,
            p_private,
            p_sro,
            p_sw,
            h_private: 0.95,
            h_sro: 0.95,
            h_sw: 0.5,
            r_private: 0.7,
            r_sw: 0.5,
            amod_private: 0.7,
            amod_sw: 0.3,
            csupply_sro: 0.95,
            csupply_sw: 0.5,
            wb_csupply: 0.3,
            rep_p: 0.2,
            rep_sw: 0.5,
        }
    }

    /// The 1% sharing column exactly as printed in Appendix A
    /// (`p_sro = 0.01`, `p_sw = 0.00`). See
    /// [`SharingLevel::stream_probabilities`] for why the default preset
    /// deviates.
    pub fn appendix_a_printed_one_percent() -> Self {
        WorkloadParams { p_sro: 0.01, p_sw: 0.0, ..Self::appendix_a(SharingLevel::One) }
    }

    /// The Section 4.3 stress test: "we set the values of `rep_p`,
    /// `rep_sw`, and `amod_sw` to 0.0, `csupply_sro` and `csupply_sw` to
    /// 1.0, `p_sw` to 0.2, and `hit_sw` to 0.1" — a workload with a large
    /// amount of cache interference. The paper does not state how
    /// `p_private`/`p_sro` absorb the change; we keep `p_sro` at its 5%
    /// value (0.05 is close) and give the rest to the private stream.
    pub fn stress() -> Self {
        WorkloadParams {
            p_private: 0.75,
            p_sro: 0.05,
            p_sw: 0.2,
            h_sw: 0.1,
            amod_sw: 0.0,
            csupply_sro: 1.0,
            csupply_sw: 1.0,
            rep_p: 0.0,
            rep_sw: 0.0,
            ..Self::appendix_a(SharingLevel::Five)
        }
    }

    /// The Section 4.4 high-sharing comparison point ("99% sharing", used
    /// for the Write-Once vs modifications 2+3 bus-utilization comparison
    /// against Katz et al.). The paper gives only the sharing total; we
    /// split it evenly between sro and sw.
    pub fn high_sharing() -> Self {
        WorkloadParams {
            p_private: 0.01,
            p_sro: 0.495,
            p_sw: 0.495,
            ..Self::appendix_a(SharingLevel::Twenty)
        }
    }

    /// Starts a builder seeded with the Appendix-A 5% values.
    pub fn builder() -> WorkloadParamsBuilder {
        WorkloadParamsBuilder { params: Self::appendix_a(SharingLevel::Five) }
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: probabilities in `[0, 1]`,
    /// stream probabilities summing to 1, `tau` finite and non-negative.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !self.tau.is_finite() || self.tau < 0.0 {
            return Err(WorkloadError::InvalidParameter { name: "tau", value: self.tau });
        }
        let probs: [(&'static str, f64); 15] = [
            ("p_private", self.p_private),
            ("p_sro", self.p_sro),
            ("p_sw", self.p_sw),
            ("h_private", self.h_private),
            ("h_sro", self.h_sro),
            ("h_sw", self.h_sw),
            ("r_private", self.r_private),
            ("r_sw", self.r_sw),
            ("amod_private", self.amod_private),
            ("amod_sw", self.amod_sw),
            ("csupply_sro", self.csupply_sro),
            ("csupply_sw", self.csupply_sw),
            ("wb_csupply", self.wb_csupply),
            ("rep_p", self.rep_p),
            ("rep_sw", self.rep_sw),
        ];
        for (name, value) in probs {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(WorkloadError::ProbabilityOutOfRange { name, value });
            }
        }
        let sum = self.p_private + self.p_sro + self.p_sw;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(WorkloadError::StreamProbabilitiesNotNormalized { sum });
        }
        Ok(())
    }

    /// The fraction of references to shared blocks (`p_sro + p_sw`).
    pub fn sharing_fraction(&self) -> f64 {
        self.p_sro + self.p_sw
    }
}

impl Default for WorkloadParams {
    /// The Appendix-A 5% sharing workload.
    fn default() -> Self {
        Self::appendix_a(SharingLevel::Five)
    }
}

/// Builder for [`WorkloadParams`], seeded with the Appendix-A 5% values.
///
/// # Example
///
/// ```
/// use snoop_workload::params::WorkloadParams;
///
/// # fn main() -> Result<(), snoop_workload::WorkloadError> {
/// let params = WorkloadParams::builder()
///     .amod_private(0.95) // the Archibald & Baer setting of Section 4.4
///     .build()?;
/// assert_eq!(params.amod_private, 0.95);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadParamsBuilder {
    params: WorkloadParams,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(&mut self, value: f64) -> &mut Self {
                self.params.$field = value;
                self
            }
        )*
    };
}

impl WorkloadParamsBuilder {
    builder_setters! {
        /// Sets the mean think time `tau`.
        tau,
        /// Sets the private-stream probability.
        p_private,
        /// Sets the shared-read-only-stream probability.
        p_sro,
        /// Sets the shared-writable-stream probability.
        p_sw,
        /// Sets the private hit rate.
        h_private,
        /// Sets the sro hit rate.
        h_sro,
        /// Sets the sw hit rate.
        h_sw,
        /// Sets the private read fraction.
        r_private,
        /// Sets the sw read fraction.
        r_sw,
        /// Sets the private already-modified probability.
        amod_private,
        /// Sets the sw already-modified probability.
        amod_sw,
        /// Sets the sro cache-supply probability.
        csupply_sro,
        /// Sets the sw cache-supply probability.
        csupply_sw,
        /// Sets the dirty-supplier probability.
        wb_csupply,
        /// Sets the private replacement write-back probability.
        rep_p,
        /// Sets the sw replacement write-back probability.
        rep_sw,
    }

    /// Sets all three stream probabilities at once.
    pub fn streams(&mut self, p_private: f64, p_sro: f64, p_sw: f64) -> &mut Self {
        self.params.p_private = p_private;
        self.params.p_sro = p_sro;
        self.params.p_sw = p_sw;
        self
    }

    /// Validates and returns the parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadParams::validate`].
    pub fn build(&self) -> Result<WorkloadParams, WorkloadError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_a_presets_validate() {
        for level in SharingLevel::ALL {
            WorkloadParams::appendix_a(level).validate().unwrap();
        }
        WorkloadParams::appendix_a_printed_one_percent().validate().unwrap();
        WorkloadParams::stress().validate().unwrap();
        WorkloadParams::high_sharing().validate().unwrap();
    }

    #[test]
    fn appendix_a_five_percent_values() {
        let p = WorkloadParams::appendix_a(SharingLevel::Five);
        assert_eq!(p.tau, 2.5);
        assert_eq!((p.p_private, p.p_sro, p.p_sw), (0.95, 0.03, 0.02));
        assert_eq!(p.h_private, 0.95);
        assert_eq!(p.h_sw, 0.5);
        assert_eq!(p.r_private, 0.7);
        assert_eq!(p.amod_private, 0.7);
        assert_eq!(p.csupply_sro, 0.95);
        assert_eq!(p.wb_csupply, 0.3);
        assert_eq!(p.rep_p, 0.2);
        assert_eq!(p.rep_sw, 0.5);
    }

    #[test]
    fn sharing_fractions() {
        for level in SharingLevel::ALL {
            let p = WorkloadParams::appendix_a(level);
            assert!((p.sharing_fraction() - level.fraction()).abs() < 1e-12, "{level}");
        }
    }

    #[test]
    fn stress_preset_matches_section_4_3() {
        let p = WorkloadParams::stress();
        assert_eq!(p.rep_p, 0.0);
        assert_eq!(p.rep_sw, 0.0);
        assert_eq!(p.amod_sw, 0.0);
        assert_eq!(p.csupply_sro, 1.0);
        assert_eq!(p.csupply_sw, 1.0);
        assert_eq!(p.p_sw, 0.2);
        assert_eq!(p.h_sw, 0.1);
    }

    #[test]
    fn builder_overrides() {
        let p = WorkloadParams::builder().h_sw(0.95).tau(3.0).build().unwrap();
        assert_eq!(p.h_sw, 0.95);
        assert_eq!(p.tau, 3.0);
        // Unset fields keep the 5% defaults.
        assert_eq!(p.p_sro, 0.03);
    }

    #[test]
    fn builder_rejects_unnormalized_streams() {
        let err = WorkloadParams::builder().streams(0.5, 0.1, 0.1).build().unwrap_err();
        assert!(matches!(err, WorkloadError::StreamProbabilitiesNotNormalized { .. }));
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let err = WorkloadParams::builder().h_sw(1.5).build().unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::ProbabilityOutOfRange { name: "h_sw", value: _ }
        ));
    }

    #[test]
    fn validate_rejects_negative_tau() {
        let err = WorkloadParams::builder().tau(-1.0).build().unwrap_err();
        assert!(matches!(err, WorkloadError::InvalidParameter { name: "tau", .. }));
    }

    #[test]
    fn sharing_level_display() {
        assert_eq!(SharingLevel::One.to_string(), "1%");
        assert_eq!(SharingLevel::Twenty.to_string(), "20%");
    }

    #[test]
    fn default_is_five_percent() {
        assert_eq!(WorkloadParams::default(), WorkloadParams::appendix_a(SharingLevel::Five));
    }
}
