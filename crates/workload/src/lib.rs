//! The workload model of the paper (Section 2.3 and Appendix A).
//!
//! The memory-reference stream of each processor is the probabilistic merge
//! of three substreams — **private**, **shared read-only** (sro), and
//! **shared-writable** (sw) blocks — following Vernon & Holliday \[VeHo86\]
//! (itself based on Dubois & Briggs \[DuBr82\]). This crate provides:
//!
//! * [`params::WorkloadParams`] — the basic parameters of Appendix A, with a
//!   builder, validation, and the paper's presets (three sharing levels, the
//!   Section 4.3 stress test, the Section 4.4 high-sharing case);
//! * [`timing::TimingModel`] — bus/memory transaction timings (block size 4,
//!   four interleaved memory modules, 3-cycle memory latency);
//! * [`streams::ReferenceRates`] — the per-reference event masses (hits,
//!   first writes, misses, per substream) that every downstream model
//!   consumes;
//! * [`adjust`] — the per-modification parameter adjustments prescribed in
//!   Appendix A (e.g. `rep_p` 0.2 → 0.3 under modification 1);
//! * [`derived::ModelInputs`] — the paper's computed model inputs
//!   (`p_local`, `p_bc`, `p_rr`, `t_read`, `p_csupwb|rr`, `p_reqwb|rr`, and
//!   the Appendix-B interference masses) for a given protocol;
//! * [`synth::ReferenceGenerator`] — a random-reference sampler driving the
//!   probabilistic discrete-event simulator;
//! * [`trace::TraceSource`] — the trait every address-trace producer
//!   implements, with [`trace::TraceGenerator`] as the synthetic
//!   implementor and the file-backed readers in [`ingest`] parsing the two
//!   external trace formats;
//! * [`measure`] — the Appendix-A parameter estimator: windowed
//!   measurement of hit rates, write fraction, sharing, `p_local`, `p_bc`
//!   from any [`trace::TraceSource`], with confidence diagnostics.
//!
//! # Example
//!
//! ```
//! use snoop_protocol::ModSet;
//! use snoop_workload::derived::ModelInputs;
//! use snoop_workload::params::{SharingLevel, WorkloadParams};
//! use snoop_workload::timing::TimingModel;
//!
//! let params = WorkloadParams::appendix_a(SharingLevel::Five);
//! let inputs = ModelInputs::derive(&params, ModSet::new(), &TimingModel::default()).unwrap();
//! // Roughly 6% of references miss and need a remote read at 5% sharing.
//! assert!(inputs.p_rr > 0.05 && inputs.p_rr < 0.07);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjust;
pub mod derived;
pub mod file;
pub mod ingest;
pub mod measure;
pub mod params;
pub mod sharing;
pub mod streams;
pub mod synth;
pub mod timing;
pub mod trace;

mod error;

pub use error::WorkloadError;
