//! Size-dependent sharing (the \[GrMi87\] refinement).
//!
//! The paper flags its workload model's main approximation itself
//! (Section 2.3): "our probabilistic treatment of the shared data
//! reference stream treats the relationship between system size and
//! *actual* sharing of data more approximately than the workload models
//! in \[ArBa86\] and \[GrMi87\]. The workload submodel … should be improved to
//! treat the shared references more similarly to the model in \[GrMi87\]."
//!
//! This module implements that improvement: instead of a fixed `csupply`
//! probability, each *individual* other cache holds a given shared block
//! with residency probability `q`, independently, so the chance that at
//! least one of the `N − 1` other caches can supply it is
//!
//! `csupply(N) = 1 − (1 − q)^(N − 1)` —
//!
//! growing with system size exactly as the trace-driven simulator measures
//! (`csupply_sw` ≈ 0.30 at N = 2 rising to ≈ 0.85 at N = 8 for the default
//! trace). The residency `q` can be calibrated so the refinement *anchors*
//! at the Appendix-A values at a reference size, keeping the paper's
//! operating points unchanged while extrapolating honestly.

use crate::params::WorkloadParams;
use crate::WorkloadError;

/// Per-cache residency probabilities for the two shared streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeDependentSharing {
    /// Probability an individual other cache holds a given sro block.
    pub residency_sro: f64,
    /// Probability an individual other cache holds a given sw block.
    pub residency_sw: f64,
}

impl SizeDependentSharing {
    /// Validates the residencies.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ProbabilityOutOfRange`] for values outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        for (name, value) in
            [("residency_sro", self.residency_sro), ("residency_sw", self.residency_sw)]
        {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(WorkloadError::ProbabilityOutOfRange { name, value });
            }
        }
        Ok(())
    }

    /// `csupply` at system size `n` for residency `q`:
    /// `1 − (1 − q)^(n−1)`.
    pub fn csupply(residency: f64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        1.0 - (1.0 - residency).powi((n - 1) as i32)
    }

    /// Residency `q` that reproduces a target `csupply` at a reference
    /// system size: the inverse of [`SizeDependentSharing::csupply`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the target is not a
    /// probability or the reference size is below 2.
    pub fn residency_for(target_csupply: f64, reference_n: usize) -> Result<f64, WorkloadError> {
        if !(0.0..=1.0).contains(&target_csupply) {
            return Err(WorkloadError::InvalidParameter {
                name: "target_csupply",
                value: target_csupply,
            });
        }
        if reference_n < 2 {
            return Err(WorkloadError::InvalidParameter {
                name: "reference_n",
                value: reference_n as f64,
            });
        }
        Ok(1.0 - (1.0 - target_csupply).powf(1.0 / (reference_n - 1) as f64))
    }

    /// Calibrates both residencies so that `params`' Appendix-A `csupply`
    /// values are reproduced exactly at `reference_n` (the paper's GTPN
    /// comparison range suggests 10).
    ///
    /// # Errors
    ///
    /// Propagates [`SizeDependentSharing::residency_for`].
    pub fn anchored(params: &WorkloadParams, reference_n: usize) -> Result<Self, WorkloadError> {
        Ok(SizeDependentSharing {
            residency_sro: Self::residency_for(params.csupply_sro, reference_n)?,
            residency_sw: Self::residency_for(params.csupply_sw, reference_n)?,
        })
    }

    /// Returns `params` with `csupply_sro`/`csupply_sw` evaluated at
    /// system size `n`.
    pub fn at_size(&self, params: &WorkloadParams, n: usize) -> WorkloadParams {
        WorkloadParams {
            csupply_sro: Self::csupply(self.residency_sro, n),
            csupply_sw: Self::csupply(self.residency_sw, n),
            ..*params
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SharingLevel, WorkloadParams};

    #[test]
    fn csupply_limits() {
        assert_eq!(SizeDependentSharing::csupply(0.3, 1), 0.0);
        assert!((SizeDependentSharing::csupply(0.3, 2) - 0.3).abs() < 1e-12);
        // Grows monotonically toward 1.
        let mut last = 0.0;
        for n in 2..50 {
            let c = SizeDependentSharing::csupply(0.3, n);
            assert!(c > last);
            last = c;
        }
        assert!(last > 0.99);
        assert_eq!(SizeDependentSharing::csupply(0.0, 10), 0.0);
        assert_eq!(SizeDependentSharing::csupply(1.0, 2), 1.0);
    }

    #[test]
    fn residency_inverts_csupply() {
        for target in [0.1, 0.5, 0.95] {
            for n in [2usize, 5, 10, 20] {
                let q = SizeDependentSharing::residency_for(target, n).unwrap();
                let back = SizeDependentSharing::csupply(q, n);
                assert!((back - target).abs() < 1e-12, "target {target} n {n}: {back}");
            }
        }
    }

    #[test]
    fn anchoring_reproduces_appendix_a_at_reference() {
        let params = WorkloadParams::appendix_a(SharingLevel::Five);
        let refinement = SizeDependentSharing::anchored(&params, 10).unwrap();
        let at_ref = refinement.at_size(&params, 10);
        assert!((at_ref.csupply_sro - params.csupply_sro).abs() < 1e-12);
        assert!((at_ref.csupply_sw - params.csupply_sw).abs() < 1e-12);
        // Below the anchor less sharing, above it more.
        let at_2 = refinement.at_size(&params, 2);
        let at_50 = refinement.at_size(&params, 50);
        assert!(at_2.csupply_sw < params.csupply_sw);
        assert!(at_50.csupply_sw > params.csupply_sw);
        at_2.validate().unwrap();
        at_50.validate().unwrap();
    }

    #[test]
    fn growth_matches_trace_measurements_qualitatively() {
        // The trace-driven simulator measures csupply_sw ≈ 0.30 at N = 2
        // and ≈ 0.85 at N = 8 (see EXPERIMENTS.md). A single residency
        // value reproduces that curve shape.
        let q = SizeDependentSharing::residency_for(0.30, 2).unwrap();
        let predicted_8 = SizeDependentSharing::csupply(q, 8);
        assert!(
            predicted_8 > 0.7 && predicted_8 < 0.98,
            "predicted csupply at N=8: {predicted_8}"
        );
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(SizeDependentSharing::residency_for(1.5, 10).is_err());
        assert!(SizeDependentSharing::residency_for(0.5, 1).is_err());
        assert!(SizeDependentSharing { residency_sro: -0.1, residency_sw: 0.5 }
            .validate()
            .is_err());
    }
}
