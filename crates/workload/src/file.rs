//! Plain-text serialization of workload parameters.
//!
//! A minimal `name = value` format (one parameter per line, `#` comments)
//! so the CLI can load measured workload characterizations — the paper's
//! closing ask: "all that is needed are workload measurement studies to
//! aid in the assignment of parameter values". Round-trips exactly and
//! reports unknown or missing names with line numbers.

use std::fmt::Write as _;

use crate::params::WorkloadParams;
use crate::WorkloadError;

/// Serializes parameters in the `name = value` format, using the paper's
/// parameter names.
pub fn to_string(params: &WorkloadParams) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# snoop-mva workload parameters (paper notation)");
    let fields = [
        ("tau", params.tau),
        ("p_private", params.p_private),
        ("p_sro", params.p_sro),
        ("p_sw", params.p_sw),
        ("h_private", params.h_private),
        ("h_sro", params.h_sro),
        ("h_sw", params.h_sw),
        ("r_private", params.r_private),
        ("r_sw", params.r_sw),
        ("amod_private", params.amod_private),
        ("amod_sw", params.amod_sw),
        ("csupply_sro", params.csupply_sro),
        ("csupply_sw", params.csupply_sw),
        ("wb_csupply", params.wb_csupply),
        ("rep_p", params.rep_p),
        ("rep_sw", params.rep_sw),
    ];
    for (name, value) in fields {
        let _ = writeln!(out, "{name} = {value}");
    }
    out
}

/// A parse failure with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<WorkloadError> for ParseError {
    fn from(e: WorkloadError) -> Self {
        ParseError { line: 0, message: e.to_string() }
    }
}

/// Parses the `name = value` format. Unspecified parameters default to the
/// Appendix-A 5% values; the result is validated.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for malformed lines,
/// unknown names or invalid values, and a line-0 error if the assembled
/// parameters fail validation.
pub fn from_str(text: &str) -> Result<WorkloadParams, ParseError> {
    let mut params = WorkloadParams::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            return Err(ParseError {
                line: line_no,
                message: format!("expected `name = value`, got {line:?}"),
            });
        };
        let name = name.trim();
        let value: f64 = value.trim().parse().map_err(|_| ParseError {
            line: line_no,
            message: format!("invalid number {:?} for {name}", value.trim()),
        })?;
        let slot = match name {
            "tau" => &mut params.tau,
            "p_private" => &mut params.p_private,
            "p_sro" => &mut params.p_sro,
            "p_sw" => &mut params.p_sw,
            "h_private" => &mut params.h_private,
            "h_sro" => &mut params.h_sro,
            "h_sw" | "hit_sw" => &mut params.h_sw,
            "r_private" => &mut params.r_private,
            "r_sw" => &mut params.r_sw,
            "amod_private" | "amod_p" => &mut params.amod_private,
            "amod_sw" => &mut params.amod_sw,
            "csupply_sro" => &mut params.csupply_sro,
            "csupply_sw" => &mut params.csupply_sw,
            "wb_csupply" => &mut params.wb_csupply,
            "rep_p" => &mut params.rep_p,
            "rep_sw" => &mut params.rep_sw,
            other => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("unknown parameter {other:?}"),
                })
            }
        };
        *slot = value;
    }
    params.validate()?;
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SharingLevel;

    #[test]
    fn round_trip() {
        for level in SharingLevel::ALL {
            let p = WorkloadParams::appendix_a(level);
            let text = to_string(&p);
            let back = from_str(&text).unwrap();
            assert_eq!(p, back, "{level}");
        }
    }

    #[test]
    fn partial_files_use_defaults() {
        let p = from_str("h_sw = 0.8\n").unwrap();
        assert_eq!(p.h_sw, 0.8);
        assert_eq!(p.p_sro, 0.03); // 5% default
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = from_str("# a comment\n\ntau = 3.0  # inline comment\n").unwrap();
        assert_eq!(p.tau, 3.0);
    }

    #[test]
    fn paper_aliases_accepted() {
        let p = from_str("hit_sw = 0.9\namod_p = 0.95\n").unwrap();
        assert_eq!(p.h_sw, 0.9);
        assert_eq!(p.amod_private, 0.95);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = from_str("tau = 2.5\nnonsense\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_name_rejected() {
        let err = from_str("bogus = 1.0\n").unwrap_err();
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn bad_number_rejected() {
        let err = from_str("tau = fast\n").unwrap_err();
        assert!(err.message.contains("fast"));
    }

    #[test]
    fn validation_failures_surface() {
        let err = from_str("p_private = 0.5\n").unwrap_err(); // streams no longer sum to 1
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("p_private + p_sro + p_sw"));
    }
}
