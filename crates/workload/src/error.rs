use std::fmt;

/// Error type for workload parameter validation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A probability parameter fell outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Parameter name as written in the paper (e.g. `h_sw`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The three stream probabilities do not sum to 1.
    StreamProbabilitiesNotNormalized {
        /// The actual sum of `p_private + p_sro + p_sw`.
        sum: f64,
    },
    /// A non-probability parameter (e.g. `tau`) was negative or non-finite.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ProbabilityOutOfRange { name, value } => {
                write!(f, "parameter {name} = {value} is not a probability")
            }
            WorkloadError::StreamProbabilitiesNotNormalized { sum } => {
                write!(f, "p_private + p_sro + p_sw = {sum}, expected 1")
            }
            WorkloadError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} is invalid")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = WorkloadError::ProbabilityOutOfRange { name: "h_sw", value: 1.5 };
        assert!(e.to_string().contains("h_sw"));
        let e = WorkloadError::StreamProbabilitiesNotNormalized { sum: 0.9 };
        assert!(e.to_string().contains("0.9"));
        let e = WorkloadError::InvalidParameter { name: "tau", value: -1.0 };
        assert!(e.to_string().contains("tau"));
    }
}
