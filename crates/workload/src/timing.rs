//! Bus and memory transaction timings (paper Section 2.1).
//!
//! The paper's system assumptions: cache blocks are four words; main memory
//! is divided into `m = 4` (block size) interleaved modules with a 3-cycle
//! latency; the cache satisfies the processor in one unit of time
//! (`T_supply = 1`); a `write-word` occupies the bus for one cycle
//! (`T_write = 1`).
//!
//! The paper inherits its bus-transaction durations from the GTPN model of
//! \[VeHo86\] without restating them, so the block-transfer composition here
//! is a documented reconstruction, calibrated against the published MVA
//! rows of Table 4.1 (see EXPERIMENTS.md):
//!
//! * a **memory-supplied** block fetch occupies the bus for
//!   `address (1) + memory latency (3) + block words (4) = 8` cycles;
//! * a **cache-supplied** block fetch skips the memory latency and the
//!   address cycle overlaps the supplier's tag check: `4` cycles;
//! * each additional **block write-back** rides the same transaction for
//!   `4` more cycles (the words; the address is already on the bus).

use crate::WorkloadError;

/// Transaction timing parameters, in processor cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Words per cache block (= number of memory modules). Paper: 4.
    pub words_per_block: u32,
    /// Main-memory latency `d_mem`. Paper: 3.0 cycles.
    pub memory_latency: f64,
    /// Bus cycles to broadcast an address. Reconstructed: 1.0.
    pub address_cycles: f64,
    /// `T_write`: bus time of a `write-word` or `invalidate`. Paper: 1.0.
    pub t_write: f64,
    /// `T_supply`: cache time to satisfy the processor. Paper: 1.0.
    pub t_supply: f64,
}

impl TimingModel {
    /// Validates the timing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for non-positive block
    /// size or negative/non-finite cycle counts.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.words_per_block == 0 {
            return Err(WorkloadError::InvalidParameter { name: "words_per_block", value: 0.0 });
        }
        let fields: [(&'static str, f64); 4] = [
            ("memory_latency", self.memory_latency),
            ("address_cycles", self.address_cycles),
            ("t_write", self.t_write),
            ("t_supply", self.t_supply),
        ];
        for (name, value) in fields {
            if !value.is_finite() || value < 0.0 {
                return Err(WorkloadError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Bus cycles to transfer one block's words.
    pub fn block_cycles(&self) -> f64 {
        f64::from(self.words_per_block)
    }

    /// Bus occupancy of a memory-supplied `read`/`read-mod`:
    /// address + memory latency + block transfer.
    pub fn memory_read_cycles(&self) -> f64 {
        self.address_cycles + self.memory_latency + self.block_cycles()
    }

    /// Bus occupancy of a cache-supplied `read`/`read-mod`: the block
    /// transfer only (tag check overlaps the address cycle).
    pub fn cache_read_cycles(&self) -> f64 {
        self.block_cycles()
    }

    /// Additional bus occupancy of a block write-back appended to a read
    /// transaction (supplier write-through or requester replacement).
    pub fn writeback_cycles(&self) -> f64 {
        self.block_cycles()
    }

    /// Number of interleaved memory modules (equal to the block size, per
    /// the paper: "main memory is divided into m modules, where m is the
    /// cache block size").
    pub fn memory_modules(&self) -> u32 {
        self.words_per_block
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            words_per_block: 4,
            memory_latency: 3.0,
            address_cycles: 1.0,
            t_write: 1.0,
            t_supply: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let t = TimingModel::default();
        assert_eq!(t.words_per_block, 4);
        assert_eq!(t.memory_latency, 3.0);
        assert_eq!(t.t_write, 1.0);
        assert_eq!(t.t_supply, 1.0);
        assert_eq!(t.memory_modules(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn derived_cycle_counts() {
        let t = TimingModel::default();
        assert_eq!(t.memory_read_cycles(), 8.0);
        assert_eq!(t.cache_read_cycles(), 4.0);
        assert_eq!(t.writeback_cycles(), 4.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_catches_bad_values() {
        let mut t = TimingModel::default();
        t.words_per_block = 0;
        assert!(t.validate().is_err());

        let mut t = TimingModel::default();
        t.memory_latency = -1.0;
        assert!(t.validate().is_err());

        let mut t = TimingModel::default();
        t.t_write = f64::NAN;
        assert!(t.validate().is_err());
    }

    #[test]
    fn bigger_blocks_scale_transfers() {
        let t = TimingModel { words_per_block: 8, ..TimingModel::default() };
        assert_eq!(t.memory_read_cycles(), 12.0);
        assert_eq!(t.cache_read_cycles(), 8.0);
        assert_eq!(t.memory_modules(), 8);
    }
}
