//! Snooping cache-consistency protocol state machines.
//!
//! This crate models the family of protocols analyzed by Vernon, Lazowska &
//! Zahorjan (ISCA 1988): Goodman's **Write-Once** protocol and the four key
//! **modifications** proposed by its successors (Synapse, Illinois, RWB,
//! Dragon, Berkeley). The protocols are expressed over the paper's three-bit
//! block state — *valid/invalid*, *exclusive/non-exclusive*,
//! *wback/no-wback* — and a five-operation bus vocabulary: `read`,
//! `read-mod`, `invalidate`, `write-word`, `write-block`.
//!
//! The crate is the shared substrate of the model suite: the discrete-event
//! simulator executes these transitions literally, the workload crate
//! classifies reference streams by the bus operations they induce, and the
//! GTPN models encode the same transitions as Petri-net structure.
//!
//! # Example
//!
//! ```
//! use snoop_protocol::{BusOp, CacheState, MissContext, Protocol};
//!
//! let write_once = Protocol::write_once();
//! // A processor write that hits a clean, non-exclusive block must announce
//! // itself on the bus (Write-Once writes the word through to memory).
//! let t = write_once.processor_write(CacheState::SharedClean, MissContext::default());
//! assert_eq!(t.bus_op, Some(BusOp::WriteWord));
//! assert_eq!(t.next_state, CacheState::ExclusiveClean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod dot;
pub mod invariants;
pub mod machine;
pub mod modifications;
pub mod ops;
pub mod scenario;
pub mod state;
pub mod table;

pub use error::ProtocolError;
pub use machine::{MissContext, Protocol, SnoopResponse, Transition};
pub use modifications::{ModSet, Modification, NamedProtocol};
pub use ops::{BusOp, ProcessorOp};
pub use state::CacheState;
