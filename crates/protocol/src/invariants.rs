//! System-wide coherence invariants.
//!
//! The per-cache state machine in [`crate::machine`] is only correct if the
//! *vector* of states held by all caches for one block stays within a legal
//! region. This module defines that region and a checker used by the
//! property tests and by the discrete-event simulator's debug assertions.
//!
//! The invariants, for any single block across the `N` caches:
//!
//! 1. **Single writer** — at most one cache holds the block dirty, *except*
//!    under modification 4, where broadcasts keep all copies word-identical
//!    and ownership is a bookkeeping role; even there, at most one *owner*
//!    (dirty copy) exists.
//! 2. **Exclusive means alone** — if any cache holds the block in an
//!    exclusive state, every other cache holds it invalid.
//! 3. **Write-Once ownership** — without modification 2 (and without 3+4),
//!    a dirty block is always exclusive: "if a cache contains a block in
//!    state wback, it is the only cache containing the block".

use std::fmt;

use crate::modifications::{ModSet, Modification};
use crate::state::CacheState;

/// A violated coherence invariant, naming the offending caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// More than one dirty copy exists.
    MultipleOwners {
        /// Indices of the caches holding dirty copies.
        caches: Vec<usize>,
    },
    /// An exclusive copy coexists with another valid copy.
    ExclusiveNotAlone {
        /// Cache holding the exclusive copy.
        exclusive: usize,
        /// Another cache holding a valid copy.
        other: usize,
    },
    /// A non-exclusive dirty copy exists under a protocol that cannot
    /// create one (no modification 2, no modifications 3+4).
    UnreachableSharedDirty {
        /// Cache holding the impossible state.
        cache: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MultipleOwners { caches } => {
                write!(f, "multiple dirty copies in caches {caches:?}")
            }
            Violation::ExclusiveNotAlone { exclusive, other } => write!(
                f,
                "cache {exclusive} holds an exclusive copy while cache {other} holds a valid copy"
            ),
            Violation::UnreachableSharedDirty { cache } => write!(
                f,
                "cache {cache} holds a non-exclusive dirty copy, unreachable for this protocol"
            ),
        }
    }
}

/// Checks the coherence invariants for one block's state vector.
///
/// Returns all violations found (empty = coherent).
///
/// # Example
///
/// ```
/// use snoop_protocol::invariants::check_block;
/// use snoop_protocol::{CacheState, ModSet};
///
/// let states = [CacheState::ExclusiveDirty, CacheState::Invalid];
/// assert!(check_block(&states, ModSet::new()).is_empty());
///
/// let bad = [CacheState::ExclusiveDirty, CacheState::SharedClean];
/// assert!(!check_block(&bad, ModSet::new()).is_empty());
/// ```
pub fn check_block(states: &[CacheState], mods: ModSet) -> Vec<Violation> {
    let mut violations = Vec::new();

    let dirty: Vec<usize> =
        states.iter().enumerate().filter(|(_, s)| s.is_dirty()).map(|(i, _)| i).collect();
    if dirty.len() > 1 {
        violations.push(Violation::MultipleOwners { caches: dirty.clone() });
    }

    for (i, s) in states.iter().enumerate() {
        if s.is_exclusive() {
            if let Some((j, _)) =
                states.iter().enumerate().find(|&(j, o)| j != i && o.is_valid())
            {
                violations.push(Violation::ExclusiveNotAlone { exclusive: i, other: j });
            }
        }
    }

    let shared_dirty_possible = mods.contains(Modification::CacheSupply)
        || (mods.contains(Modification::InvalidateOnWrite)
            && mods.contains(Modification::DistributedWrite));
    if !shared_dirty_possible {
        for (i, s) in states.iter().enumerate() {
            if *s == CacheState::SharedDirty {
                violations.push(Violation::UnreachableSharedDirty { cache: i });
            }
        }
    }

    violations
}

/// Convenience predicate: is this state vector coherent for `mods`?
pub fn is_coherent(states: &[CacheState], mods: ModSet) -> bool {
    check_block(states, mods).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MissContext, Protocol};
    use crate::ops::BusOp;

    #[test]
    fn all_invalid_is_coherent() {
        assert!(is_coherent(&[CacheState::Invalid; 8], ModSet::new()));
    }

    #[test]
    fn many_shared_clean_is_coherent() {
        assert!(is_coherent(&[CacheState::SharedClean; 8], ModSet::new()));
    }

    #[test]
    fn two_owners_is_incoherent() {
        let states = [CacheState::SharedDirty, CacheState::SharedDirty];
        let v = check_block(&states, ModSet::from_numbers(&[2]).unwrap());
        assert!(v.iter().any(|x| matches!(x, Violation::MultipleOwners { .. })));
    }

    #[test]
    fn exclusive_with_company_is_incoherent() {
        let states = [CacheState::ExclusiveClean, CacheState::SharedClean];
        let v = check_block(&states, ModSet::new());
        assert!(v.iter().any(|x| matches!(x, Violation::ExclusiveNotAlone { .. })));
    }

    #[test]
    fn shared_dirty_requires_mod2_or_34() {
        let states = [CacheState::SharedDirty, CacheState::SharedClean];
        assert!(!is_coherent(&states, ModSet::new()));
        assert!(is_coherent(&states, ModSet::from_numbers(&[2]).unwrap()));
        assert!(is_coherent(&states, ModSet::from_numbers(&[3, 4]).unwrap()));
        assert!(!is_coherent(&states, ModSet::from_numbers(&[4]).unwrap()));
        assert!(!is_coherent(&states, ModSet::from_numbers(&[3]).unwrap()));
    }

    #[test]
    fn violation_displays() {
        for v in [
            Violation::MultipleOwners { caches: vec![0, 1] },
            Violation::ExclusiveNotAlone { exclusive: 0, other: 1 },
            Violation::UnreachableSharedDirty { cache: 2 },
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    /// Exhaustively walks every reachable `N`-cache configuration under the
    /// given modification set and checks coherence is preserved by every
    /// event (reads, writes, purges) — a small explicit-state model checker
    /// over the protocol state machine.
    #[allow(clippy::needless_range_loop)] // cache ids index the state array
    fn model_check<const N: usize>(mods: ModSet) {
        let p = Protocol::new(mods);
        let start = [CacheState::Invalid; N];
        let mut frontier = vec![start];
        let mut seen = std::collections::HashSet::new();
        seen.insert(start);

        while let Some(states) = frontier.pop() {
            assert!(is_coherent(&states, mods), "{mods}: reached incoherent {states:?}");
            for actor in 0..N {
                let shared =
                    states.iter().enumerate().any(|(q, s)| q != actor && s.is_valid());
                let ctx = MissContext { shared_line: shared };
                for write in [false, true] {
                    let t = if write {
                        p.processor_write(states[actor], ctx)
                    } else {
                        p.processor_read(states[actor], ctx)
                    };
                    let mut next = states;
                    next[actor] = t.next_state;
                    if let Some(op) = t.bus_op {
                        for q in 0..N {
                            if q != actor {
                                next[q] = p.snoop(states[q], op).next_state;
                            }
                        }
                        // A modification-4 write miss is followed by a
                        // broadcast the other caches also snoop.
                        if !t.hit && write && p.write_miss_broadcasts(ctx) {
                            for q in 0..N {
                                if q != actor {
                                    next[q] =
                                        p.snoop(next[q], BusOp::WriteWord).next_state;
                                }
                            }
                        }
                    }
                    if seen.insert(next) {
                        frontier.push(next);
                    }
                    // Replacement: the actor purges its block.
                    let mut purged = next;
                    purged[actor] = CacheState::Invalid;
                    if seen.insert(purged) {
                        frontier.push(purged);
                    }
                }
            }
        }
    }

    #[test]
    fn two_cache_model_check() {
        for mods in ModSet::power_set() {
            model_check::<2>(mods);
        }
    }

    #[test]
    fn three_cache_model_check() {
        for mods in ModSet::power_set() {
            model_check::<3>(mods);
        }
    }

    #[test]
    fn four_cache_model_check_named_protocols() {
        // The full power set at N = 4 is slower; the named protocols cover
        // the combinations that shipped in hardware.
        for p in crate::modifications::NamedProtocol::ALL {
            model_check::<4>(p.modifications());
        }
    }
}
