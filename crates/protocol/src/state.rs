//! The three-bit cache-block state of the paper (Section 2.1).
//!
//! > "Cache block states are assumed to be defined by three bits of state
//! > information. The first bit denotes whether the block is *valid* or
//! > *invalid*. The second bit indicates whether the cache knows that it has
//! > the only copy of a block (*exclusive*) … The third bit
//! > (*wback/no-wback*) denotes whether or not the processor must write back
//! > the block when it is purged."
//!
//! Of the eight bit patterns, five are meaningful (the exclusivity and
//! dirty bits are irrelevant for an invalid block); they are named here in
//! the MOESI-like vocabulary used by later literature so that readers
//! familiar with either naming can navigate.

use std::fmt;

/// State of one block in one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum CacheState {
    /// Not present (or invalidated). Paper bits: `invalid / - / -`.
    #[default]
    Invalid,
    /// Valid, possibly also in other caches, consistent with memory.
    /// Paper bits: `valid / non-exclusive / no-wback`.
    SharedClean,
    /// Valid, possibly also in other caches, **owned**: this cache must
    /// write the block back when purging it. Paper bits:
    /// `valid / non-exclusive / wback`. Only reachable under modification 2
    /// (direct cache-to-cache supply) or modifications 3+4 (broadcast
    /// without memory update).
    SharedDirty,
    /// Valid, known to be the only cached copy, consistent with memory.
    /// Paper bits: `valid / exclusive / no-wback`. In Write-Once this is the
    /// state after the first (written-through) write; under modification 1
    /// it is also the load state when no other cache holds the block.
    ExclusiveClean,
    /// Valid, only cached copy, modified relative to memory. Paper bits:
    /// `valid / exclusive / wback`.
    ExclusiveDirty,
}

impl CacheState {
    /// All five states, in a fixed order (useful for tables and tests).
    pub const ALL: [CacheState; 5] = [
        CacheState::Invalid,
        CacheState::SharedClean,
        CacheState::SharedDirty,
        CacheState::ExclusiveClean,
        CacheState::ExclusiveDirty,
    ];

    /// The *valid* bit.
    pub fn is_valid(self) -> bool {
        self != CacheState::Invalid
    }

    /// The *exclusive* bit (meaningful only when valid).
    pub fn is_exclusive(self) -> bool {
        matches!(self, CacheState::ExclusiveClean | CacheState::ExclusiveDirty)
    }

    /// The *wback* bit: must the block be written back when purged?
    pub fn is_dirty(self) -> bool {
        matches!(self, CacheState::SharedDirty | CacheState::ExclusiveDirty)
    }

    /// Encodes the paper's three state bits as `(valid, exclusive, wback)`.
    pub fn bits(self) -> (bool, bool, bool) {
        (self.is_valid(), self.is_exclusive(), self.is_dirty())
    }

    /// Decodes the paper's three state bits. Invalid blocks ignore the other
    /// two bits, matching the paper's convention.
    pub fn from_bits(valid: bool, exclusive: bool, wback: bool) -> CacheState {
        match (valid, exclusive, wback) {
            (false, _, _) => CacheState::Invalid,
            (true, false, false) => CacheState::SharedClean,
            (true, false, true) => CacheState::SharedDirty,
            (true, true, false) => CacheState::ExclusiveClean,
            (true, true, true) => CacheState::ExclusiveDirty,
        }
    }

    /// Loses exclusivity (another cache obtained a copy) while preserving
    /// the other bits. Invalid stays invalid.
    pub fn demoted(self) -> CacheState {
        match self {
            CacheState::ExclusiveClean => CacheState::SharedClean,
            CacheState::ExclusiveDirty => CacheState::SharedDirty,
            other => other,
        }
    }
}

impl fmt::Display for CacheState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CacheState::Invalid => "invalid",
            CacheState::SharedClean => "valid/non-excl/no-wback",
            CacheState::SharedDirty => "valid/non-excl/wback",
            CacheState::ExclusiveClean => "valid/excl/no-wback",
            CacheState::ExclusiveDirty => "valid/excl/wback",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for s in CacheState::ALL {
            let (v, e, w) = s.bits();
            assert_eq!(CacheState::from_bits(v, e, w), s);
        }
    }

    #[test]
    fn invalid_ignores_other_bits() {
        assert_eq!(CacheState::from_bits(false, true, true), CacheState::Invalid);
        assert_eq!(CacheState::from_bits(false, true, false), CacheState::Invalid);
    }

    #[test]
    fn dirty_and_exclusive_flags() {
        assert!(CacheState::ExclusiveDirty.is_dirty());
        assert!(CacheState::ExclusiveDirty.is_exclusive());
        assert!(CacheState::SharedDirty.is_dirty());
        assert!(!CacheState::SharedDirty.is_exclusive());
        assert!(!CacheState::SharedClean.is_dirty());
        assert!(!CacheState::Invalid.is_valid());
    }

    #[test]
    fn demotion() {
        assert_eq!(CacheState::ExclusiveClean.demoted(), CacheState::SharedClean);
        assert_eq!(CacheState::ExclusiveDirty.demoted(), CacheState::SharedDirty);
        assert_eq!(CacheState::SharedClean.demoted(), CacheState::SharedClean);
        assert_eq!(CacheState::Invalid.demoted(), CacheState::Invalid);
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(CacheState::default(), CacheState::Invalid);
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let mut names: Vec<String> = CacheState::ALL.iter().map(|s| s.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
