//! The four Write-Once modifications and the named protocols they compose.
//!
//! The paper (Section 2.2) factors the five successor protocols into four
//! independent modifications of Write-Once:
//!
//! 1. **Exclusive load** — a shared bus line lets a cache load a block in
//!    state *exclusive* when no other cache holds it (Illinois, Dragon, RWB).
//! 2. **Direct cache supply** — a cache holding the block in *wback* supplies
//!    it directly, without updating memory, taking ownership on a read
//!    (Berkeley, Dragon; Illinois has a close variant).
//! 3. **Invalidate instead of write-word** — the first write to a
//!    non-exclusive block issues a 1-cycle `invalidate` rather than a
//!    write-through (all five successors).
//! 4. **Distributed write (update)** — writes to non-exclusive blocks are
//!    broadcast and all copies stay valid (RWB, Dragon).

use std::fmt;
use std::str::FromStr;

use crate::ProtocolError;

/// One of the paper's four modifications to Write-Once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modification {
    /// Modification 1: load exclusively when the bus *shared* line stays low.
    ExclusiveLoad,
    /// Modification 2: dirty cache supplies data directly, without updating
    /// main memory; supplier keeps ownership (read) or transfers the data
    /// (read-mod).
    CacheSupply,
    /// Modification 3: invalidate on first write instead of writing the word
    /// through to memory.
    InvalidateOnWrite,
    /// Modification 4: broadcast writes keep all copies valid (update
    /// protocol).
    DistributedWrite,
}

impl Modification {
    /// All modifications in paper order.
    pub const ALL: [Modification; 4] = [
        Modification::ExclusiveLoad,
        Modification::CacheSupply,
        Modification::InvalidateOnWrite,
        Modification::DistributedWrite,
    ];

    /// The paper's number for this modification (1–4).
    pub fn number(self) -> u8 {
        match self {
            Modification::ExclusiveLoad => 1,
            Modification::CacheSupply => 2,
            Modification::InvalidateOnWrite => 3,
            Modification::DistributedWrite => 4,
        }
    }

    /// Parses the paper's number.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownModification`] for numbers outside
    /// `1..=4`.
    pub fn from_number(n: u8) -> Result<Self, ProtocolError> {
        match n {
            1 => Ok(Modification::ExclusiveLoad),
            2 => Ok(Modification::CacheSupply),
            3 => Ok(Modification::InvalidateOnWrite),
            4 => Ok(Modification::DistributedWrite),
            other => Err(ProtocolError::UnknownModification(other)),
        }
    }
}

impl fmt::Display for Modification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mod{}", self.number())
    }
}

/// A set of modifications applied on top of Write-Once.
///
/// # Example
///
/// ```
/// use snoop_protocol::{ModSet, Modification};
///
/// let dragon_like = ModSet::new()
///     .with(Modification::ExclusiveLoad)
///     .with(Modification::DistributedWrite);
/// assert!(dragon_like.contains(Modification::ExclusiveLoad));
/// assert_eq!(dragon_like.to_string(), "WO+1+4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ModSet(u8);

impl ModSet {
    /// The empty set: plain Write-Once.
    pub fn new() -> Self {
        ModSet(0)
    }

    /// The set containing every modification.
    pub fn all() -> Self {
        Modification::ALL.iter().fold(ModSet::new(), |s, &m| s.with(m))
    }

    /// Returns this set with `m` added (builder style; `ModSet` is `Copy`).
    #[must_use]
    pub fn with(self, m: Modification) -> Self {
        ModSet(self.0 | 1 << m.number())
    }

    /// Returns this set with `m` removed.
    #[must_use]
    pub fn without(self, m: Modification) -> Self {
        ModSet(self.0 & !(1 << m.number()))
    }

    /// Whether `m` is in the set.
    pub fn contains(self, m: Modification) -> bool {
        self.0 & (1 << m.number()) != 0
    }

    /// Whether the set is empty (plain Write-Once).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of modifications in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the contained modifications in paper order.
    pub fn iter(self) -> impl Iterator<Item = Modification> {
        Modification::ALL.into_iter().filter(move |&m| self.contains(m))
    }

    /// Builds a set from paper numbers, e.g. `ModSet::from_numbers(&[1, 4])`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownModification`] on a bad number.
    pub fn from_numbers(numbers: &[u8]) -> Result<Self, ProtocolError> {
        let mut set = ModSet::new();
        for &n in numbers {
            set = set.with(Modification::from_number(n)?);
        }
        Ok(set)
    }

    /// All 16 modification subsets, Write-Once first.
    pub fn power_set() -> Vec<ModSet> {
        (0u8..16)
            .map(|bits| {
                let mut s = ModSet::new();
                for m in Modification::ALL {
                    if bits & (1 << (m.number() - 1)) != 0 {
                        s = s.with(m);
                    }
                }
                s
            })
            .collect()
    }
}

impl FromIterator<Modification> for ModSet {
    fn from_iter<T: IntoIterator<Item = Modification>>(iter: T) -> Self {
        iter.into_iter().fold(ModSet::new(), ModSet::with)
    }
}

impl fmt::Display for ModSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WO")?;
        for m in self.iter() {
            write!(f, "+{}", m.number())?;
        }
        Ok(())
    }
}

impl FromStr for ModSet {
    type Err = ProtocolError;

    /// Parses `"WO"`, `"WO+1"`, `"WO+1+4"`, … (case-insensitive), or a named
    /// protocol (see [`NamedProtocol`]).
    fn from_str(s: &str) -> Result<Self, ProtocolError> {
        if let Ok(named) = s.parse::<NamedProtocol>() {
            return Ok(named.modifications());
        }
        let upper = s.to_ascii_uppercase();
        let mut parts = upper.split('+');
        match parts.next() {
            Some("WO") | Some("WRITE-ONCE") | Some("WRITEONCE") => {}
            _ => return Err(ProtocolError::UnknownProtocol(s.to_string())),
        }
        let mut set = ModSet::new();
        for part in parts {
            let n: u8 = part
                .trim()
                .parse()
                .map_err(|_| ProtocolError::UnknownProtocol(s.to_string()))?;
            set = set.with(Modification::from_number(n)?);
        }
        Ok(set)
    }
}

/// The published protocols, expressed as modification sets per the paper's
/// Section 2.2 attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedProtocol {
    /// Goodman 1983: the baseline.
    WriteOnce,
    /// Every write goes to memory; equivalent to modification 4 alone
    /// ("this modification alone reduces the Write-Once protocol to a
    /// write-through protocol").
    WriteThrough,
    /// Papamarcos & Patel 1984: modifications 1, 2 (memory-updating
    /// variant), 3.
    Illinois,
    /// Katz et al. 1985: modifications 2, 3.
    Berkeley,
    /// McCreight 1984: modifications 1, 2, 3, 4.
    Dragon,
    /// Rudolph & Segall 1984: modifications 1, 3, 4.
    Rwb,
    /// Frank 1984: modification 3 only (no cache-to-cache supply, no
    /// exclusive clean load).
    Synapse,
}

impl NamedProtocol {
    /// All named protocols.
    pub const ALL: [NamedProtocol; 7] = [
        NamedProtocol::WriteOnce,
        NamedProtocol::WriteThrough,
        NamedProtocol::Illinois,
        NamedProtocol::Berkeley,
        NamedProtocol::Dragon,
        NamedProtocol::Rwb,
        NamedProtocol::Synapse,
    ];

    /// The modification set this protocol corresponds to.
    pub fn modifications(self) -> ModSet {
        use Modification::*;
        match self {
            NamedProtocol::WriteOnce => ModSet::new(),
            NamedProtocol::WriteThrough => ModSet::new().with(DistributedWrite),
            NamedProtocol::Illinois => {
                ModSet::new().with(ExclusiveLoad).with(CacheSupply).with(InvalidateOnWrite)
            }
            NamedProtocol::Berkeley => ModSet::new().with(CacheSupply).with(InvalidateOnWrite),
            NamedProtocol::Dragon => ModSet::all(),
            NamedProtocol::Rwb => {
                ModSet::new().with(ExclusiveLoad).with(InvalidateOnWrite).with(DistributedWrite)
            }
            NamedProtocol::Synapse => ModSet::new().with(InvalidateOnWrite),
        }
    }
}

impl fmt::Display for NamedProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NamedProtocol::WriteOnce => "write-once",
            NamedProtocol::WriteThrough => "write-through",
            NamedProtocol::Illinois => "illinois",
            NamedProtocol::Berkeley => "berkeley",
            NamedProtocol::Dragon => "dragon",
            NamedProtocol::Rwb => "rwb",
            NamedProtocol::Synapse => "synapse",
        })
    }
}

impl FromStr for NamedProtocol {
    type Err = ProtocolError;

    fn from_str(s: &str) -> Result<Self, ProtocolError> {
        match s.to_ascii_lowercase().as_str() {
            "write-once" | "writeonce" | "goodman" => Ok(NamedProtocol::WriteOnce),
            "write-through" | "writethrough" => Ok(NamedProtocol::WriteThrough),
            "illinois" | "mesi" => Ok(NamedProtocol::Illinois),
            "berkeley" => Ok(NamedProtocol::Berkeley),
            "dragon" => Ok(NamedProtocol::Dragon),
            "rwb" => Ok(NamedProtocol::Rwb),
            "synapse" => Ok(NamedProtocol::Synapse),
            _ => Err(ProtocolError::UnknownProtocol(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modification_numbers_round_trip() {
        for m in Modification::ALL {
            assert_eq!(Modification::from_number(m.number()).unwrap(), m);
        }
        assert!(Modification::from_number(0).is_err());
        assert!(Modification::from_number(5).is_err());
    }

    #[test]
    fn set_operations() {
        let s = ModSet::new().with(Modification::ExclusiveLoad);
        assert!(s.contains(Modification::ExclusiveLoad));
        assert!(!s.contains(Modification::CacheSupply));
        assert_eq!(s.len(), 1);
        assert!(s.without(Modification::ExclusiveLoad).is_empty());
        assert_eq!(ModSet::all().len(), 4);
    }

    #[test]
    fn display_format() {
        assert_eq!(ModSet::new().to_string(), "WO");
        assert_eq!(ModSet::from_numbers(&[1, 4]).unwrap().to_string(), "WO+1+4");
        assert_eq!(ModSet::all().to_string(), "WO+1+2+3+4");
    }

    #[test]
    fn parse_mod_sets() {
        assert_eq!("WO".parse::<ModSet>().unwrap(), ModSet::new());
        assert_eq!("wo+1+4".parse::<ModSet>().unwrap(), ModSet::from_numbers(&[1, 4]).unwrap());
        assert!("WO+7".parse::<ModSet>().is_err());
        assert!("nonsense".parse::<ModSet>().is_err());
    }

    #[test]
    fn display_is_canonical_regardless_of_spelling_or_insertion_order() {
        // The engine's content-addressed cache keys hash the `Display`
        // form, so every spelling of the same set MUST render identically —
        // "WO+3+1" printing differently from "WO+1+3" would poison the
        // cache with duplicate entries for one protocol.
        assert_eq!("WO+3+1".parse::<ModSet>().unwrap().to_string(), "WO+1+3");
        assert_eq!("wo+4+2+1".parse::<ModSet>().unwrap().to_string(), "WO+1+2+4");
        let forward: ModSet =
            [Modification::ExclusiveLoad, Modification::InvalidateOnWrite].into_iter().collect();
        let reverse: ModSet =
            [Modification::InvalidateOnWrite, Modification::ExclusiveLoad].into_iter().collect();
        assert_eq!(forward, reverse);
        assert_eq!(forward.to_string(), reverse.to_string());
        // Every member of the power set round-trips through its canonical
        // rendering to the same set and the same rendering.
        for set in ModSet::power_set() {
            let rendered = set.to_string();
            let reparsed: ModSet = rendered.parse().unwrap();
            assert_eq!(reparsed, set);
            assert_eq!(reparsed.to_string(), rendered);
            // Canonical form lists modification numbers in ascending order.
            let numbers: Vec<u8> = set.iter().map(|m| m.number()).collect();
            let mut sorted = numbers.clone();
            sorted.sort_unstable();
            assert_eq!(numbers, sorted, "{rendered}");
        }
    }

    #[test]
    fn parse_named_protocols_as_mod_sets() {
        assert_eq!("dragon".parse::<ModSet>().unwrap(), ModSet::all());
        assert_eq!(
            "berkeley".parse::<ModSet>().unwrap(),
            ModSet::from_numbers(&[2, 3]).unwrap()
        );
    }

    #[test]
    fn named_protocol_attributions_match_paper() {
        use Modification::*;
        // "Modification 1 is included in the Illinois, Dragon, and RWB protocols."
        for p in [NamedProtocol::Illinois, NamedProtocol::Dragon, NamedProtocol::Rwb] {
            assert!(p.modifications().contains(ExclusiveLoad), "{p}");
        }
        assert!(!NamedProtocol::Berkeley.modifications().contains(ExclusiveLoad));
        // "Modification 2 is included in the Berkeley and Dragon protocols"
        // (and the Illinois variant).
        for p in [NamedProtocol::Berkeley, NamedProtocol::Dragon, NamedProtocol::Illinois] {
            assert!(p.modifications().contains(CacheSupply), "{p}");
        }
        // "Modification 3 is included in all five protocols proposed as
        // improvements to Write-Once."
        for p in [
            NamedProtocol::Illinois,
            NamedProtocol::Berkeley,
            NamedProtocol::Dragon,
            NamedProtocol::Rwb,
            NamedProtocol::Synapse,
        ] {
            assert!(p.modifications().contains(InvalidateOnWrite), "{p}");
        }
        // "Modification 4 is included in the RWB and Dragon protocols."
        for p in [NamedProtocol::Rwb, NamedProtocol::Dragon] {
            assert!(p.modifications().contains(DistributedWrite), "{p}");
        }
    }

    #[test]
    fn power_set_has_16_unique_members() {
        let mut sets = ModSet::power_set();
        assert_eq!(sets[0], ModSet::new());
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), 16);
    }

    #[test]
    fn from_iterator() {
        let s: ModSet = [Modification::ExclusiveLoad, Modification::DistributedWrite]
            .into_iter()
            .collect();
        assert_eq!(s, ModSet::from_numbers(&[1, 4]).unwrap());
    }

    #[test]
    fn named_round_trip_display_parse() {
        for p in NamedProtocol::ALL {
            assert_eq!(p.to_string().parse::<NamedProtocol>().unwrap(), p);
        }
    }
}
