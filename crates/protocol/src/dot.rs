//! Graphviz (DOT) export of protocol state machines.
//!
//! Renders the per-block state diagram of a protocol — processor-induced
//! transitions (solid edges) and snoop-induced transitions (dashed) — for
//! documentation and for eyeballing how a modification set rewires
//! Write-Once. Pipe through `dot -Tsvg` to render.

use std::fmt::Write as _;

use crate::machine::{MissContext, Protocol};
use crate::ops::BusOp;
use crate::state::CacheState;

fn node_id(state: CacheState) -> &'static str {
    match state {
        CacheState::Invalid => "I",
        CacheState::SharedClean => "SC",
        CacheState::SharedDirty => "SD",
        CacheState::ExclusiveClean => "EC",
        CacheState::ExclusiveDirty => "ED",
    }
}

/// Renders the full state diagram of `protocol` as a DOT digraph.
pub fn state_diagram(protocol: &Protocol) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", protocol.modifications());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  label=\"{} cache-block states\";", protocol.modifications());
    for state in CacheState::ALL {
        let shape = if state.is_dirty() { "doublecircle" } else { "circle" };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{}\", shape={shape}];",
            node_id(state),
            node_id(state),
            state
        );
    }

    // Processor transitions (solid). Collapse identical shared/unshared
    // outcomes to keep the graph readable.
    for state in CacheState::ALL {
        for (op_name, write) in [("read", false), ("write", true)] {
            let mut outcomes = Vec::new();
            for shared in [false, true] {
                let ctx = MissContext { shared_line: shared };
                let t = if write {
                    protocol.processor_write(state, ctx)
                } else {
                    protocol.processor_read(state, ctx)
                };
                let label = match t.bus_op {
                    Some(bus) => format!("{op_name}/{bus}"),
                    None => op_name.to_string(),
                };
                outcomes.push((t.next_state, label, shared));
            }
            if outcomes[0].0 == outcomes[1].0 && outcomes[0].1 == outcomes[1].1 {
                let (next, label, _) = &outcomes[0];
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{label}\"];",
                    node_id(state),
                    node_id(*next)
                );
            } else {
                for (next, label, shared) in &outcomes {
                    let suffix = if *shared { " (shared)" } else { " (excl)" };
                    let _ = writeln!(
                        out,
                        "  {} -> {} [label=\"{label}{suffix}\"];",
                        node_id(state),
                        node_id(*next)
                    );
                }
            }
        }
    }

    // Snoop transitions (dashed), only where the state actually changes.
    for state in CacheState::ALL {
        for op in BusOp::ALL {
            let r = protocol.snoop(state, op);
            if r.next_state != state {
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"snoop {op}\", style=dashed];",
                    node_id(state),
                    node_id(r.next_state)
                );
            }
        }
    }

    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modifications::ModSet;

    #[test]
    fn diagram_is_well_formed_dot() {
        let d = state_diagram(&Protocol::write_once());
        assert!(d.starts_with("digraph"));
        assert!(d.trim_end().ends_with('}'));
        // Balanced braces.
        assert_eq!(d.matches('{').count(), d.matches('}').count());
    }

    #[test]
    fn diagram_names_all_states() {
        let d = state_diagram(&Protocol::write_once());
        for id in ["I", "SC", "SD", "EC", "ED"] {
            assert!(d.contains(&format!("  {id} [")), "missing node {id}");
        }
    }

    #[test]
    fn write_once_diagram_has_write_through_edge() {
        let d = state_diagram(&Protocol::write_once());
        // SC --write/write-word--> EC is Write-Once's signature.
        assert!(d.contains("SC -> EC [label=\"write/write-word\"]"), "{d}");
    }

    #[test]
    fn mod3_diagram_uses_invalidate() {
        let p = Protocol::new(ModSet::from_numbers(&[3]).unwrap());
        let d = state_diagram(&p);
        assert!(d.contains("write/invalidate"));
        assert!(!d.contains("SC -> EC [label=\"write/write-word\"]"));
    }

    #[test]
    fn diagrams_differ_across_protocols() {
        let wo = state_diagram(&Protocol::write_once());
        let dragon = state_diagram(&Protocol::new(ModSet::all()));
        assert_ne!(wo, dragon);
    }

    #[test]
    fn snoop_edges_are_dashed() {
        let d = state_diagram(&Protocol::write_once());
        assert!(d.contains("style=dashed"));
        assert!(d.contains("snoop read-mod"));
    }
}
