use std::fmt;

/// Error type for protocol construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A modification number outside `1..=4` was supplied.
    UnknownModification(u8),
    /// A protocol name string did not match any named protocol.
    UnknownProtocol(String),
    /// A modification combination the model cannot express.
    ///
    /// The paper notes modification 4 "is only practical when implemented
    /// together with modification 1"; combinations we reject carry an
    /// explanation.
    UnsupportedCombination(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownModification(n) => {
                write!(f, "unknown modification {n}, expected 1..=4")
            }
            ProtocolError::UnknownProtocol(name) => write!(f, "unknown protocol name {name:?}"),
            ProtocolError::UnsupportedCombination(msg) => {
                write!(f, "unsupported modification combination: {msg}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ProtocolError::UnknownModification(9).to_string().contains("9"));
        assert!(ProtocolError::UnknownProtocol("foo".into()).to_string().contains("foo"));
        assert!(ProtocolError::UnsupportedCombination("x".into()).to_string().contains("x"));
    }
}
