//! The protocol transition engine.
//!
//! [`Protocol`] holds a [`ModSet`] and answers two questions:
//!
//! * what happens when **this cache's processor** issues a read or write
//!   against a block in a given state ([`Protocol::processor_read`],
//!   [`Protocol::processor_write`], [`Protocol::fill_state`]), and
//! * what happens when **this cache snoops** a bus operation issued by some
//!   other cache for a block it holds ([`Protocol::snoop`]).
//!
//! The transitions follow Section 2.2 of the paper. Where a modification
//! combination leaves a corner case unspecified (the paper treats the
//! modifications one at a time), the choice made here is documented on the
//! relevant match arm; the invariant checker in [`crate::invariants`]
//! verifies that every combination preserves single-owner coherence.

use crate::modifications::{ModSet, Modification};
use crate::ops::BusOp;
use crate::state::CacheState;

/// Context a cache needs to resolve a miss: the state of the rest of the
/// system as observable during the fill transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissContext {
    /// Whether the bus *shared* line is raised during the fill, i.e. at
    /// least one other cache holds the block. Only modification 1 caches
    /// inspect it, but it is always physically present.
    pub shared_line: bool,
}

impl MissContext {
    /// Context in which some other cache holds the block.
    pub fn shared() -> Self {
        MissContext { shared_line: true }
    }

    /// Context in which no other cache holds the block.
    pub fn unshared() -> Self {
        MissContext { shared_line: false }
    }
}

/// Outcome of a processor reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Whether the reference hit in the cache (no block fetch needed). A
    /// hit may still require a bus operation (consistency announcement).
    pub hit: bool,
    /// The bus operation required, if any.
    pub bus_op: Option<BusOp>,
    /// New state of the block in this cache after the reference (and the
    /// bus operation, if any) completes.
    pub next_state: CacheState,
    /// For a `write-word` bus operation: whether main memory is updated by
    /// the broadcast. Write-Once writes through; modifications 3+4 combined
    /// broadcast without updating memory (the broadcaster takes ownership).
    pub updates_memory: bool,
}

impl Transition {
    fn local(next_state: CacheState) -> Self {
        Transition { hit: true, bus_op: None, next_state, updates_memory: false }
    }
}

/// How much a snooped bus operation occupies the snooping cache.
///
/// The MVA cache-interference submodel distinguishes requests that tie up
/// the cache "for the entire duration of the bus transaction" (probability
/// p′) from briefer actions (probability p): the paper gives a broadcast
/// write to a resident block as an example of the former and an invalidation
/// as an example of the latter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SnoopOccupancy {
    /// The operation does not concern this cache (dual directories filter
    /// it before it can delay the processor).
    None,
    /// A brief action, shorter than the bus transaction (e.g. invalidate).
    Brief,
    /// The cache is busy for the whole bus transaction (supplying data,
    /// writing back, or applying a broadcast word).
    Full,
}

/// Outcome of snooping a bus operation for a block this cache holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopResponse {
    /// New state of the block in the snooping cache.
    pub next_state: CacheState,
    /// Whether this cache raises the bus *shared* line.
    pub raises_shared: bool,
    /// Whether this cache can supply the block to the requester (the system
    /// selects one supplier if several can).
    pub can_supply: bool,
    /// Whether this cache writes the block to main memory as part of
    /// servicing the operation (Write-Once's dirty-snoop interrupt).
    pub writes_memory: bool,
    /// How long the snooping cache is occupied.
    pub occupancy: SnoopOccupancy,
}

impl SnoopResponse {
    fn ignore(state: CacheState) -> Self {
        SnoopResponse {
            next_state: state,
            raises_shared: false,
            can_supply: false,
            writes_memory: false,
            occupancy: SnoopOccupancy::None,
        }
    }
}

/// A snooping cache-consistency protocol: Write-Once plus a set of
/// modifications.
///
/// # Example
///
/// ```
/// use snoop_protocol::{CacheState, ModSet, Modification, Protocol};
///
/// let illinois_like = Protocol::new(
///     ModSet::new()
///         .with(Modification::ExclusiveLoad)
///         .with(Modification::CacheSupply)
///         .with(Modification::InvalidateOnWrite),
/// );
/// // With modification 1 a miss that finds no other copy loads exclusively.
/// use snoop_protocol::{BusOp, MissContext};
/// let fill = illinois_like.fill_state(BusOp::Read, MissContext::unshared());
/// assert_eq!(fill, CacheState::ExclusiveClean);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Protocol {
    mods: ModSet,
}

impl Protocol {
    /// A protocol with the given modification set.
    pub fn new(mods: ModSet) -> Self {
        Protocol { mods }
    }

    /// Goodman's unmodified Write-Once protocol.
    pub fn write_once() -> Self {
        Protocol { mods: ModSet::new() }
    }

    /// The modification set in force.
    pub fn modifications(&self) -> ModSet {
        self.mods
    }

    fn has(&self, m: Modification) -> bool {
        self.mods.contains(m)
    }

    /// Resolves a processor **read**.
    ///
    /// Reads that hit are purely local. A read miss issues a bus `read`;
    /// the state the block is loaded in is given by [`Protocol::fill_state`].
    pub fn processor_read(&self, state: CacheState, ctx: MissContext) -> Transition {
        match state {
            CacheState::Invalid => Transition {
                hit: false,
                bus_op: Some(BusOp::Read),
                next_state: self.fill_state(BusOp::Read, ctx),
                updates_memory: false,
            },
            valid => Transition::local(valid),
        }
    }

    /// Resolves a processor **write**.
    ///
    /// * Writes to exclusive blocks are local (the defining saving of
    ///   copy-back protocols).
    /// * The first write to a non-exclusive block announces itself:
    ///   `write-word` in Write-Once, `invalidate` under modification 3,
    ///   a non-invalidating broadcast `write-word` under modification 4.
    /// * A write miss fetches the block with `read-mod` (or, under
    ///   modification 4, like a read followed by the broadcast — see below).
    pub fn processor_write(&self, state: CacheState, ctx: MissContext) -> Transition {
        use Modification::*;
        match state {
            CacheState::ExclusiveDirty => Transition::local(CacheState::ExclusiveDirty),
            CacheState::ExclusiveClean => Transition::local(CacheState::ExclusiveDirty),

            CacheState::SharedClean => {
                if self.has(DistributedWrite) {
                    // Modification 4: broadcast, all copies stay valid. With
                    // modification 3 also present the broadcast skips memory
                    // and the broadcaster takes ownership (paper, Section 2.2
                    // summary).
                    let skips_memory = self.has(InvalidateOnWrite);
                    Transition {
                        hit: true,
                        bus_op: Some(BusOp::WriteWord),
                        next_state: if skips_memory {
                            CacheState::SharedDirty
                        } else {
                            CacheState::SharedClean
                        },
                        updates_memory: !skips_memory,
                    }
                } else if self.has(InvalidateOnWrite) {
                    // Modification 3: 1-cycle invalidate; the block is now
                    // modified relative to memory.
                    Transition {
                        hit: true,
                        bus_op: Some(BusOp::Invalidate),
                        next_state: CacheState::ExclusiveDirty,
                        updates_memory: false,
                    }
                } else {
                    // Write-Once: write the word through; other copies
                    // invalidate; block becomes exclusive and no-wback.
                    Transition {
                        hit: true,
                        bus_op: Some(BusOp::WriteWord),
                        next_state: CacheState::ExclusiveClean,
                        updates_memory: true,
                    }
                }
            }

            CacheState::SharedDirty => {
                // Owned, non-exclusive (exists only under modification 2 or
                // 3+4). A write must still notify the other copies.
                if self.has(DistributedWrite) {
                    // Broadcast; ownership (and the dirty rest of the block)
                    // stays here whether or not memory receives the word.
                    Transition {
                        hit: true,
                        bus_op: Some(BusOp::WriteWord),
                        next_state: CacheState::SharedDirty,
                        updates_memory: !self.has(InvalidateOnWrite),
                    }
                } else {
                    // Invalidate the other copies. A write-through would not
                    // make memory consistent (the rest of the block is
                    // dirty), so the invalidate form is used regardless of
                    // modification 3; the block ends exclusive-dirty.
                    Transition {
                        hit: true,
                        bus_op: Some(BusOp::Invalidate),
                        next_state: CacheState::ExclusiveDirty,
                        updates_memory: false,
                    }
                }
            }

            CacheState::Invalid => {
                if self.has(DistributedWrite) && ctx.shared_line {
                    // Dragon-style write miss while other copies exist: fetch
                    // with a plain read (copies stay valid) — the system then
                    // broadcasts the written word as a second transaction.
                    let skips_memory = self.has(InvalidateOnWrite);
                    Transition {
                        hit: false,
                        bus_op: Some(BusOp::Read),
                        next_state: if skips_memory {
                            CacheState::SharedDirty
                        } else {
                            CacheState::SharedClean
                        },
                        updates_memory: !skips_memory,
                    }
                } else {
                    Transition {
                        hit: false,
                        bus_op: Some(BusOp::ReadMod),
                        next_state: self.fill_state(BusOp::ReadMod, ctx),
                        updates_memory: false,
                    }
                }
            }
        }
    }

    /// State in which a missed block is loaded, given the fill's bus
    /// operation and the observed shared line.
    pub fn fill_state(&self, op: BusOp, ctx: MissContext) -> CacheState {
        use Modification::*;
        match op {
            BusOp::Read => {
                if self.has(ExclusiveLoad) && !ctx.shared_line {
                    // Modification 1: nobody raised the shared line, load
                    // exclusively.
                    CacheState::ExclusiveClean
                } else {
                    CacheState::SharedClean
                }
            }
            // read-mod invalidates every other copy, so the block is always
            // exclusive and (about to be) modified.
            BusOp::ReadMod => CacheState::ExclusiveDirty,
            // The remaining operations do not fill blocks.
            BusOp::Invalidate | BusOp::WriteWord | BusOp::WriteBlock => CacheState::Invalid,
        }
    }

    /// Whether a modification-4 write miss needs a follow-up broadcast
    /// `write-word` after its fill (see [`Protocol::processor_write`]).
    pub fn write_miss_broadcasts(&self, ctx: MissContext) -> bool {
        self.has(Modification::DistributedWrite) && ctx.shared_line
    }

    /// Resolves what a cache holding `state` does when it snoops `op` from
    /// another cache (for the same block).
    pub fn snoop(&self, state: CacheState, op: BusOp) -> SnoopResponse {
        use Modification::*;
        if state == CacheState::Invalid {
            return SnoopResponse::ignore(state);
        }
        match op {
            BusOp::Read => {
                let dirty = state.is_dirty();
                if dirty && self.has(CacheSupply) {
                    // Modification 2: supply directly, skip memory, keep
                    // ownership (non-exclusive, wback).
                    SnoopResponse {
                        next_state: CacheState::SharedDirty,
                        raises_shared: true,
                        can_supply: true,
                        writes_memory: false,
                        occupancy: SnoopOccupancy::Full,
                    }
                } else if dirty {
                    // Write-Once: interrupt the transaction, update memory,
                    // then memory supplies; block becomes no-wback.
                    SnoopResponse {
                        next_state: CacheState::SharedClean,
                        raises_shared: true,
                        can_supply: true,
                        writes_memory: true,
                        occupancy: SnoopOccupancy::Full,
                    }
                } else {
                    // Clean copy: raise shared, optionally supply (the
                    // workload model's csupply parameters assume a cache
                    // with a copy supplies it faster than memory).
                    SnoopResponse {
                        next_state: state.demoted(),
                        raises_shared: true,
                        can_supply: true,
                        writes_memory: false,
                        occupancy: SnoopOccupancy::Brief,
                    }
                }
            }

            BusOp::ReadMod => {
                let dirty = state.is_dirty();
                if dirty && self.has(CacheSupply) {
                    // Supply directly and invalidate; the requester is the
                    // new (exclusive) owner, memory is not updated.
                    SnoopResponse {
                        next_state: CacheState::Invalid,
                        raises_shared: true,
                        can_supply: true,
                        writes_memory: false,
                        occupancy: SnoopOccupancy::Full,
                    }
                } else if dirty {
                    SnoopResponse {
                        next_state: CacheState::Invalid,
                        raises_shared: true,
                        can_supply: true,
                        writes_memory: true,
                        occupancy: SnoopOccupancy::Full,
                    }
                } else {
                    // Invalidate only: shorter than the bus transaction —
                    // the paper's example of a brief (p, not p′) event.
                    SnoopResponse {
                        next_state: CacheState::Invalid,
                        raises_shared: true,
                        can_supply: true,
                        writes_memory: false,
                        occupancy: SnoopOccupancy::Brief,
                    }
                }
            }

            BusOp::Invalidate => SnoopResponse {
                next_state: CacheState::Invalid,
                raises_shared: false,
                can_supply: false,
                writes_memory: false,
                occupancy: SnoopOccupancy::Brief,
            },

            BusOp::WriteWord => {
                if self.has(DistributedWrite) {
                    // Modification 4: apply the broadcast word; all copies
                    // stay valid. A dirty holder cedes ownership to the
                    // broadcaster under 3+4 (the broadcaster "takes
                    // responsibility for writing back"), and memory is
                    // current under plain 4 — either way this copy is clean.
                    // Occupying the cache for the full transaction is the
                    // paper's own example of a p′ event.
                    SnoopResponse {
                        next_state: CacheState::SharedClean,
                        raises_shared: true,
                        can_supply: false,
                        writes_memory: false,
                        occupancy: SnoopOccupancy::Full,
                    }
                } else {
                    // Write-Once: "any cache containing the block
                    // invalidates its copy".
                    SnoopResponse {
                        next_state: CacheState::Invalid,
                        raises_shared: false,
                        can_supply: false,
                        writes_memory: false,
                        occupancy: SnoopOccupancy::Brief,
                    }
                }
            }

            // Replacement write-backs carry no coherence obligation (the
            // writer held the only dirty copy).
            BusOp::WriteBlock => SnoopResponse::ignore(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modifications::NamedProtocol;

    fn with_mods(numbers: &[u8]) -> Protocol {
        Protocol::new(ModSet::from_numbers(numbers).unwrap())
    }

    // ---- Write-Once base behaviour (paper Section 2.2, "Write-Once") ----

    #[test]
    fn wo_read_miss_loads_non_exclusive_clean() {
        let p = Protocol::write_once();
        let t = p.processor_read(CacheState::Invalid, MissContext::unshared());
        assert!(!t.hit);
        assert_eq!(t.bus_op, Some(BusOp::Read));
        // "A bus read request loads the cache block in state non-exclusive
        // and no-wback" — even when no other cache has it (no mod 1).
        assert_eq!(t.next_state, CacheState::SharedClean);
    }

    #[test]
    fn wo_write_miss_loads_exclusive_dirty() {
        let p = Protocol::write_once();
        let t = p.processor_write(CacheState::Invalid, MissContext::shared());
        assert_eq!(t.bus_op, Some(BusOp::ReadMod));
        assert_eq!(t.next_state, CacheState::ExclusiveDirty);
    }

    #[test]
    fn wo_first_write_writes_through() {
        let p = Protocol::write_once();
        let t = p.processor_write(CacheState::SharedClean, MissContext::default());
        assert!(t.hit);
        assert_eq!(t.bus_op, Some(BusOp::WriteWord));
        assert!(t.updates_memory);
        // "The write operation changes the state of the block to exclusive
        // and no-wback."
        assert_eq!(t.next_state, CacheState::ExclusiveClean);
    }

    #[test]
    fn wo_second_write_is_local() {
        let p = Protocol::write_once();
        let t = p.processor_write(CacheState::ExclusiveClean, MissContext::default());
        assert!(t.hit);
        assert_eq!(t.bus_op, None);
        assert_eq!(t.next_state, CacheState::ExclusiveDirty);
    }

    #[test]
    fn wo_read_hit_is_local_everywhere() {
        let p = Protocol::write_once();
        for s in [CacheState::SharedClean, CacheState::ExclusiveClean, CacheState::ExclusiveDirty]
        {
            let t = p.processor_read(s, MissContext::default());
            assert!(t.hit);
            assert_eq!(t.bus_op, None);
            assert_eq!(t.next_state, s);
        }
    }

    #[test]
    fn wo_dirty_snoop_on_read_writes_memory_and_cleans() {
        let p = Protocol::write_once();
        let r = p.snoop(CacheState::ExclusiveDirty, BusOp::Read);
        assert!(r.writes_memory);
        assert!(r.can_supply);
        // "The state of the block changes to no-wback if the bus request is
        // of type read."
        assert_eq!(r.next_state, CacheState::SharedClean);
        assert_eq!(r.occupancy, SnoopOccupancy::Full);
    }

    #[test]
    fn wo_snooped_write_word_invalidates() {
        let p = Protocol::write_once();
        let r = p.snoop(CacheState::SharedClean, BusOp::WriteWord);
        assert_eq!(r.next_state, CacheState::Invalid);
        assert_eq!(r.occupancy, SnoopOccupancy::Brief);
    }

    #[test]
    fn wo_snooped_read_mod_invalidates() {
        let p = Protocol::write_once();
        for s in [CacheState::SharedClean, CacheState::ExclusiveClean] {
            let r = p.snoop(s, BusOp::ReadMod);
            assert_eq!(r.next_state, CacheState::Invalid);
            assert_eq!(r.occupancy, SnoopOccupancy::Brief);
        }
        let r = p.snoop(CacheState::ExclusiveDirty, BusOp::ReadMod);
        assert_eq!(r.next_state, CacheState::Invalid);
        assert!(r.writes_memory);
    }

    #[test]
    fn invalid_blocks_ignore_everything() {
        let p = Protocol::new(ModSet::all());
        for op in BusOp::ALL {
            let r = p.snoop(CacheState::Invalid, op);
            assert_eq!(r, SnoopResponse::ignore(CacheState::Invalid), "{op}");
        }
    }

    #[test]
    fn write_block_is_coherence_neutral() {
        for mods in ModSet::power_set() {
            let p = Protocol::new(mods);
            for s in CacheState::ALL {
                let r = p.snoop(s, BusOp::WriteBlock);
                assert_eq!(r.next_state, s);
                assert_eq!(r.occupancy, SnoopOccupancy::None);
            }
        }
    }

    // ---- Modification 1: exclusive load ----

    #[test]
    fn mod1_loads_exclusive_when_unshared() {
        let p = with_mods(&[1]);
        assert_eq!(
            p.fill_state(BusOp::Read, MissContext::unshared()),
            CacheState::ExclusiveClean
        );
        assert_eq!(p.fill_state(BusOp::Read, MissContext::shared()), CacheState::SharedClean);
    }

    #[test]
    fn mod1_makes_private_rewrites_free() {
        let p = with_mods(&[1]);
        // Load exclusively, then write twice: no bus operations after the fill.
        let fill = p.fill_state(BusOp::Read, MissContext::unshared());
        let w1 = p.processor_write(fill, MissContext::default());
        assert_eq!(w1.bus_op, None);
        let w2 = p.processor_write(w1.next_state, MissContext::default());
        assert_eq!(w2.bus_op, None);
        assert_eq!(w2.next_state, CacheState::ExclusiveDirty);
    }

    // ---- Modification 2: direct cache supply ----

    #[test]
    fn mod2_supplier_keeps_ownership_on_read() {
        let p = with_mods(&[2]);
        let r = p.snoop(CacheState::ExclusiveDirty, BusOp::Read);
        assert!(r.can_supply);
        assert!(!r.writes_memory);
        // "the supplying cache sets the state to non-exclusive and wback"
        assert_eq!(r.next_state, CacheState::SharedDirty);
    }

    #[test]
    fn mod2_supplier_transfers_on_read_mod() {
        let p = with_mods(&[2]);
        let r = p.snoop(CacheState::SharedDirty, BusOp::ReadMod);
        assert!(r.can_supply);
        assert!(!r.writes_memory);
        assert_eq!(r.next_state, CacheState::Invalid);
    }

    #[test]
    fn mod2_owner_write_invalidates_others() {
        let p = with_mods(&[2]);
        let t = p.processor_write(CacheState::SharedDirty, MissContext::default());
        assert_eq!(t.bus_op, Some(BusOp::Invalidate));
        assert_eq!(t.next_state, CacheState::ExclusiveDirty);
    }

    // ---- Modification 3: invalidate on first write ----

    #[test]
    fn mod3_first_write_invalidates_and_dirties() {
        let p = with_mods(&[3]);
        let t = p.processor_write(CacheState::SharedClean, MissContext::default());
        assert_eq!(t.bus_op, Some(BusOp::Invalidate));
        assert!(!t.updates_memory);
        // Not written through, so the block is modified relative to memory.
        assert_eq!(t.next_state, CacheState::ExclusiveDirty);
    }

    // ---- Modification 4: distributed write ----

    #[test]
    fn mod4_broadcast_keeps_copies_valid() {
        let p = with_mods(&[1, 4]);
        let t = p.processor_write(CacheState::SharedClean, MissContext::default());
        assert_eq!(t.bus_op, Some(BusOp::WriteWord));
        assert!(t.updates_memory);
        assert_eq!(t.next_state, CacheState::SharedClean);

        let r = p.snoop(CacheState::SharedClean, BusOp::WriteWord);
        assert_eq!(r.next_state, CacheState::SharedClean);
        assert_eq!(r.occupancy, SnoopOccupancy::Full);
    }

    #[test]
    fn mod34_broadcast_skips_memory_and_takes_ownership() {
        let p = with_mods(&[1, 3, 4]);
        let t = p.processor_write(CacheState::SharedClean, MissContext::default());
        assert_eq!(t.bus_op, Some(BusOp::WriteWord));
        assert!(!t.updates_memory);
        // "We assume the cache performing the broadcast takes this
        // responsibility" (Section 2.2 summary).
        assert_eq!(t.next_state, CacheState::SharedDirty);
    }

    #[test]
    fn mod34_snooped_broadcast_cedes_ownership() {
        let p = with_mods(&[3, 4]);
        let r = p.snoop(CacheState::SharedDirty, BusOp::WriteWord);
        assert_eq!(r.next_state, CacheState::SharedClean);
    }

    #[test]
    fn mod4_write_miss_on_shared_block_reads_then_broadcasts() {
        let p = with_mods(&[1, 4]);
        let ctx = MissContext::shared();
        let t = p.processor_write(CacheState::Invalid, ctx);
        assert_eq!(t.bus_op, Some(BusOp::Read));
        assert!(p.write_miss_broadcasts(ctx));
        // Unshared write miss behaves like read-mod (exclusive, no broadcast
        // needed).
        let ctx = MissContext::unshared();
        let t = p.processor_write(CacheState::Invalid, ctx);
        assert_eq!(t.bus_op, Some(BusOp::ReadMod));
        assert!(!p.write_miss_broadcasts(ctx));
    }

    #[test]
    fn write_through_equivalence() {
        // "this modification [4] alone reduces the Write-Once protocol to a
        // write-through protocol": without mod 1, every write to a shared
        // block goes on the bus, forever.
        let p = Protocol::new(NamedProtocol::WriteThrough.modifications());
        let mut state = p.fill_state(BusOp::Read, MissContext::shared());
        for _ in 0..5 {
            let t = p.processor_write(state, MissContext::shared());
            assert_eq!(t.bus_op, Some(BusOp::WriteWord));
            assert!(t.updates_memory);
            state = t.next_state;
        }
    }

    // ---- cross-cutting sanity ----

    #[test]
    fn exclusive_states_never_issue_bus_ops_on_write() {
        for mods in ModSet::power_set() {
            let p = Protocol::new(mods);
            for s in [CacheState::ExclusiveClean, CacheState::ExclusiveDirty] {
                let t = p.processor_write(s, MissContext::default());
                assert_eq!(t.bus_op, None, "{mods} {s}");
                assert_eq!(t.next_state, CacheState::ExclusiveDirty);
            }
        }
    }

    #[test]
    fn hits_never_change_validity() {
        for mods in ModSet::power_set() {
            let p = Protocol::new(mods);
            for s in CacheState::ALL.into_iter().filter(|s| s.is_valid()) {
                let t = p.processor_write(s, MissContext::default());
                assert!(t.next_state.is_valid());
                let t = p.processor_read(s, MissContext::default());
                assert!(t.next_state.is_valid());
            }
        }
    }

    #[test]
    fn snoop_never_promotes_to_exclusive() {
        for mods in ModSet::power_set() {
            let p = Protocol::new(mods);
            for s in CacheState::ALL {
                for op in BusOp::ALL {
                    let r = p.snoop(s, op);
                    // A snoop may leave the state untouched (write-block is
                    // coherence-neutral) but must never *gain* exclusivity.
                    assert!(
                        !r.next_state.is_exclusive() || r.next_state == s,
                        "{mods}: snooping {op} in {s} must not gain exclusivity"
                    );
                }
            }
        }
    }

    /// The complete Write-Once processor-side transition table, hand-coded
    /// from Goodman's protocol description, checked cell by cell. Context
    /// (the shared line) is irrelevant without modification 1, so each
    /// entry covers both contexts.
    #[test]
    fn write_once_full_processor_table() {
        use CacheState::*;
        let p = Protocol::write_once();
        // (state, is_write) -> (bus op, next state)
        let expected: &[(CacheState, bool, Option<BusOp>, CacheState)] = &[
            (Invalid, false, Some(BusOp::Read), SharedClean),
            (Invalid, true, Some(BusOp::ReadMod), ExclusiveDirty),
            (SharedClean, false, None, SharedClean),
            (SharedClean, true, Some(BusOp::WriteWord), ExclusiveClean),
            // SharedDirty is unreachable in plain Write-Once, but the
            // machine still answers coherently (invalidate + own).
            (SharedDirty, false, None, SharedDirty),
            (SharedDirty, true, Some(BusOp::Invalidate), ExclusiveDirty),
            (ExclusiveClean, false, None, ExclusiveClean),
            (ExclusiveClean, true, None, ExclusiveDirty),
            (ExclusiveDirty, false, None, ExclusiveDirty),
            (ExclusiveDirty, true, None, ExclusiveDirty),
        ];
        for &(state, is_write, bus, next) in expected {
            for shared in [false, true] {
                let ctx = MissContext { shared_line: shared };
                let t = if is_write {
                    p.processor_write(state, ctx)
                } else {
                    p.processor_read(state, ctx)
                };
                assert_eq!(t.bus_op, bus, "{state} write={is_write} shared={shared}");
                assert_eq!(t.next_state, next, "{state} write={is_write} shared={shared}");
            }
        }
    }

    /// The complete Write-Once snoop-side transition table.
    #[test]
    fn write_once_full_snoop_table() {
        use BusOp::*;
        use CacheState::*;
        let p = Protocol::write_once();
        // (state, op) -> (next state, writes memory)
        let expected: &[(CacheState, BusOp, CacheState, bool)] = &[
            (SharedClean, Read, SharedClean, false),
            (SharedClean, ReadMod, Invalid, false),
            (SharedClean, Invalidate, Invalid, false),
            (SharedClean, WriteWord, Invalid, false),
            (SharedClean, WriteBlock, SharedClean, false),
            (ExclusiveClean, Read, SharedClean, false),
            (ExclusiveClean, ReadMod, Invalid, false),
            (ExclusiveClean, Invalidate, Invalid, false),
            (ExclusiveClean, WriteWord, Invalid, false),
            (ExclusiveClean, WriteBlock, ExclusiveClean, false),
            (ExclusiveDirty, Read, SharedClean, true),
            (ExclusiveDirty, ReadMod, Invalid, true),
            (ExclusiveDirty, Invalidate, Invalid, false),
            (ExclusiveDirty, WriteWord, Invalid, false),
            (ExclusiveDirty, WriteBlock, ExclusiveDirty, false),
        ];
        for &(state, op, next, writes_memory) in expected {
            let r = p.snoop(state, op);
            assert_eq!(r.next_state, next, "{state} snoop {op}");
            assert_eq!(r.writes_memory, writes_memory, "{state} snoop {op}");
        }
    }

    #[test]
    fn dirty_data_is_never_silently_dropped() {
        // Every snoop transition out of a dirty state either supplies the
        // data, writes it to memory, or keeps a dirty copy somewhere (the
        // requester of a read-mod will have it).
        for mods in ModSet::power_set() {
            let p = Protocol::new(mods);
            for s in [CacheState::SharedDirty, CacheState::ExclusiveDirty] {
                for op in [BusOp::Read, BusOp::ReadMod] {
                    let r = p.snoop(s, op);
                    assert!(
                        r.can_supply || r.writes_memory || r.next_state.is_dirty(),
                        "{mods}: {op} snoop in {s} loses dirty data"
                    );
                }
            }
        }
    }
}
