//! Human-readable transition tables.
//!
//! Renders the full processor- and snoop-side transition relation of a
//! protocol as fixed-width text tables, for documentation, the CLI's
//! `snoop protocol` subcommand, and eyeball-debugging of modification
//! combinations.

use std::fmt::Write as _;

use crate::machine::{MissContext, Protocol};
use crate::ops::BusOp;
use crate::state::CacheState;

/// Renders the processor-side transition table: for every state and every
/// (read/write × shared/unshared) stimulus, the bus operation and next
/// state.
pub fn processor_table(protocol: &Protocol) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "processor transitions for {}", protocol.modifications());
    let _ = writeln!(
        out,
        "{:<24} {:<8} {:<8} {:<12} {:<24}",
        "state", "op", "shared", "bus op", "next state"
    );
    for state in CacheState::ALL {
        for (name, write) in [("read", false), ("write", true)] {
            for shared in [false, true] {
                let ctx = MissContext { shared_line: shared };
                let t = if write {
                    protocol.processor_write(state, ctx)
                } else {
                    protocol.processor_read(state, ctx)
                };
                let bus = t.bus_op.map(|o| o.to_string()).unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{:<24} {:<8} {:<8} {:<12} {:<24}",
                    state.to_string(),
                    name,
                    if shared { "yes" } else { "no" },
                    bus,
                    t.next_state.to_string()
                );
            }
        }
    }
    out
}

/// Renders the snoop-side transition table: for every state and bus
/// operation, the response.
pub fn snoop_table(protocol: &Protocol) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "snoop transitions for {}", protocol.modifications());
    let _ = writeln!(
        out,
        "{:<24} {:<12} {:<24} {:<8} {:<8} {:<10}",
        "state", "bus op", "next state", "supply", "wr mem", "occupancy"
    );
    for state in CacheState::ALL {
        for op in BusOp::ALL {
            let r = protocol.snoop(state, op);
            let _ = writeln!(
                out,
                "{:<24} {:<12} {:<24} {:<8} {:<8} {:<10}",
                state.to_string(),
                op.to_string(),
                r.next_state.to_string(),
                if r.can_supply { "yes" } else { "no" },
                if r.writes_memory { "yes" } else { "no" },
                format!("{:?}", r.occupancy).to_lowercase()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modifications::ModSet;

    #[test]
    fn processor_table_mentions_every_state() {
        let t = processor_table(&Protocol::write_once());
        for s in CacheState::ALL {
            assert!(t.contains(&s.to_string()), "missing {s}");
        }
    }

    #[test]
    fn snoop_table_mentions_every_bus_op() {
        let t = snoop_table(&Protocol::write_once());
        for o in BusOp::ALL {
            assert!(t.contains(&o.to_string()), "missing {o}");
        }
    }

    #[test]
    fn tables_differ_across_modifications() {
        let wo = processor_table(&Protocol::write_once());
        let dragon = processor_table(&Protocol::new(ModSet::all()));
        assert_ne!(wo, dragon);
    }

    #[test]
    fn table_has_expected_row_count() {
        // Header (2 lines) + 5 states × 2 ops × 2 shared values.
        let t = processor_table(&Protocol::write_once());
        assert_eq!(t.lines().count(), 2 + 5 * 2 * 2);
        // Header (2 lines) + 5 states × 5 bus ops.
        let t = snoop_table(&Protocol::write_once());
        assert_eq!(t.lines().count(), 2 + 5 * 5);
    }
}
