//! Processor and bus operation vocabularies (paper Section 2.1).

use std::fmt;

/// A memory operation issued by a processor to its cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessorOp {
    /// Load a word.
    Read,
    /// Store a word.
    Write,
}

impl fmt::Display for ProcessorOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProcessorOp::Read => "read",
            ProcessorOp::Write => "write",
        })
    }
}

/// A bus transaction. The paper's five types:
///
/// > "Bus transactions may be one of five types: read, read-mod (i.e.,
/// > read-with-the-intent-to-modify), invalidate, write-word, or
/// > write-block."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// Block fetch caused by a processor read miss.
    Read,
    /// Block fetch with intent to modify (write miss); invalidates other
    /// copies.
    ReadMod,
    /// Invalidate other copies without transferring data (modification 3's
    /// replacement for `write-word`).
    Invalidate,
    /// Broadcast a single written word (Write-Once's write-through of the
    /// first write; modification 4's distributed-write broadcast).
    WriteWord,
    /// Write a whole modified block back to main memory (replacement
    /// write-back, or a dirty snooper updating memory before a `read`).
    WriteBlock,
}

impl BusOp {
    /// All five bus operations in the paper's order.
    pub const ALL: [BusOp; 5] =
        [BusOp::Read, BusOp::ReadMod, BusOp::Invalidate, BusOp::WriteWord, BusOp::WriteBlock];

    /// Whether this operation transfers a whole cache block on the bus.
    pub fn transfers_block(self) -> bool {
        matches!(self, BusOp::Read | BusOp::ReadMod | BusOp::WriteBlock)
    }

    /// Whether this operation asks other caches to give up their copies
    /// (under the base protocol semantics; modification 4 turns
    /// `write-word` into an update instead).
    pub fn invalidates_others(self) -> bool {
        matches!(self, BusOp::ReadMod | BusOp::Invalidate | BusOp::WriteWord)
    }

    /// Whether this operation requests data (some agent must supply the
    /// block).
    pub fn requests_data(self) -> bool {
        matches!(self, BusOp::Read | BusOp::ReadMod)
    }
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BusOp::Read => "read",
            BusOp::ReadMod => "read-mod",
            BusOp::Invalidate => "invalidate",
            BusOp::WriteWord => "write-word",
            BusOp::WriteBlock => "write-block",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_transfer_classification() {
        assert!(BusOp::Read.transfers_block());
        assert!(BusOp::ReadMod.transfers_block());
        assert!(BusOp::WriteBlock.transfers_block());
        assert!(!BusOp::Invalidate.transfers_block());
        assert!(!BusOp::WriteWord.transfers_block());
    }

    #[test]
    fn invalidation_classification() {
        assert!(BusOp::ReadMod.invalidates_others());
        assert!(BusOp::Invalidate.invalidates_others());
        assert!(BusOp::WriteWord.invalidates_others());
        assert!(!BusOp::Read.invalidates_others());
        assert!(!BusOp::WriteBlock.invalidates_others());
    }

    #[test]
    fn data_request_classification() {
        assert!(BusOp::Read.requests_data());
        assert!(BusOp::ReadMod.requests_data());
        assert!(!BusOp::WriteWord.requests_data());
    }

    #[test]
    fn displays_are_distinct() {
        let mut names: Vec<String> = BusOp::ALL.iter().map(|o| o.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
