//! Spec-style scenario testing for protocols.
//!
//! A [`Scenario`] scripts a sequence of processor references against a
//! multi-cache system for one block and asserts, step by step, the bus
//! operations issued and the states reached — executable versions of the
//! walk-throughs protocol papers narrate ("P1 reads, P2 writes, P1 reads
//! again…"). The repository's golden protocol tests
//! (`tests/protocol_scenarios.rs`) are written in this DSL.
//!
//! # Example
//!
//! ```
//! use snoop_protocol::scenario::Scenario;
//! use snoop_protocol::{BusOp, CacheState, ModSet};
//!
//! // Write-Once's defining sequence: miss, first write (through), second
//! // write (local).
//! Scenario::new("write-once basics", 2, ModSet::new())
//!     .read(0)
//!     .expect_bus(Some(BusOp::Read))
//!     .expect_state(0, CacheState::SharedClean)
//!     .write(0)
//!     .expect_bus(Some(BusOp::WriteWord))
//!     .expect_state(0, CacheState::ExclusiveClean)
//!     .write(0)
//!     .expect_bus(None)
//!     .expect_state(0, CacheState::ExclusiveDirty)
//!     .run()
//!     .expect("scenario holds");
//! ```

use crate::machine::{MissContext, Protocol};
use crate::modifications::ModSet;
use crate::ops::BusOp;
use crate::state::CacheState;

/// One scripted step.
#[derive(Debug, Clone)]
enum Step {
    Read(usize),
    Write(usize),
    Purge(usize),
    ExpectBus(Option<BusOp>),
    ExpectState(usize, CacheState),
    ExpectCoherent,
}

/// A scenario failure, describing which step broke and how.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// Scenario name.
    pub scenario: String,
    /// Index of the failing step.
    pub step: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario {:?}, step {}: {}", self.scenario, self.step, self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// A scripted multi-cache scenario for one block.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    caches: usize,
    mods: ModSet,
    steps: Vec<Step>,
}

impl Scenario {
    /// Starts a scenario over `caches` caches running `mods`.
    ///
    /// # Panics
    ///
    /// Panics if `caches` is zero.
    pub fn new(name: &str, caches: usize, mods: ModSet) -> Self {
        assert!(caches > 0, "need at least one cache");
        Scenario { name: name.to_string(), caches, mods, steps: Vec::new() }
    }

    /// Processor `p` reads the block.
    #[must_use]
    pub fn read(mut self, p: usize) -> Self {
        self.steps.push(Step::Read(p));
        self
    }

    /// Processor `p` writes the block.
    #[must_use]
    pub fn write(mut self, p: usize) -> Self {
        self.steps.push(Step::Write(p));
        self
    }

    /// Cache `p` purges (replaces) the block.
    #[must_use]
    pub fn purge(mut self, p: usize) -> Self {
        self.steps.push(Step::Purge(p));
        self
    }

    /// Asserts the bus operation of the *preceding* reference.
    #[must_use]
    pub fn expect_bus(mut self, op: Option<BusOp>) -> Self {
        self.steps.push(Step::ExpectBus(op));
        self
    }

    /// Asserts cache `p`'s current state for the block.
    #[must_use]
    pub fn expect_state(mut self, p: usize, state: CacheState) -> Self {
        self.steps.push(Step::ExpectState(p, state));
        self
    }

    /// Asserts the system-wide coherence invariants hold right now.
    #[must_use]
    pub fn expect_coherent(mut self) -> Self {
        self.steps.push(Step::ExpectCoherent);
        self
    }

    /// Executes the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] encountered.
    // Indexing `states` by cache id keeps actor/observer roles explicit.
    #[allow(clippy::needless_range_loop)]
    pub fn run(&self) -> Result<(), ScenarioError> {
        let protocol = Protocol::new(self.mods);
        let mut states = vec![CacheState::Invalid; self.caches];
        let mut last_bus: Option<Option<BusOp>> = None;

        let fail = |step: usize, message: String| ScenarioError {
            scenario: self.name.clone(),
            step,
            message,
        };
        let check_actor = |step: usize, p: usize| {
            if p >= self.caches {
                Err(fail(step, format!("cache {p} out of range (0..{})", self.caches)))
            } else {
                Ok(())
            }
        };

        for (idx, step) in self.steps.iter().enumerate() {
            match *step {
                Step::Read(p) | Step::Write(p) => {
                    check_actor(idx, p)?;
                    let shared =
                        states.iter().enumerate().any(|(q, s)| q != p && s.is_valid());
                    let ctx = MissContext { shared_line: shared };
                    let is_write = matches!(step, Step::Write(_));
                    let t = if is_write {
                        protocol.processor_write(states[p], ctx)
                    } else {
                        protocol.processor_read(states[p], ctx)
                    };
                    if let Some(op) = t.bus_op {
                        for q in 0..self.caches {
                            if q != p {
                                states[q] = protocol.snoop(states[q], op).next_state;
                            }
                        }
                        if !t.hit && is_write && protocol.write_miss_broadcasts(ctx) {
                            for q in 0..self.caches {
                                if q != p {
                                    states[q] =
                                        protocol.snoop(states[q], BusOp::WriteWord).next_state;
                                }
                            }
                        }
                    }
                    states[p] = t.next_state;
                    last_bus = Some(t.bus_op);
                }
                Step::Purge(p) => {
                    check_actor(idx, p)?;
                    states[p] = CacheState::Invalid;
                    last_bus = None;
                }
                Step::ExpectBus(expected) => match last_bus {
                    None => {
                        return Err(fail(
                            idx,
                            "expect_bus must follow a read or write".to_string(),
                        ))
                    }
                    Some(actual) if actual != expected => {
                        return Err(fail(
                            idx,
                            format!("expected bus op {expected:?}, got {actual:?}"),
                        ))
                    }
                    _ => {}
                },
                Step::ExpectState(p, expected) => {
                    check_actor(idx, p)?;
                    if states[p] != expected {
                        return Err(fail(
                            idx,
                            format!("cache {p}: expected {expected}, got {}", states[p]),
                        ));
                    }
                }
                Step::ExpectCoherent => {
                    let violations = crate::invariants::check_block(&states, self.mods);
                    if !violations.is_empty() {
                        return Err(fail(idx, format!("incoherent: {violations:?}")));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_scenario() {
        Scenario::new("basic", 2, ModSet::new())
            .read(0)
            .expect_bus(Some(BusOp::Read))
            .expect_state(0, CacheState::SharedClean)
            .expect_coherent()
            .run()
            .unwrap();
    }

    #[test]
    fn wrong_bus_op_is_reported() {
        let err = Scenario::new("wrong-bus", 2, ModSet::new())
            .read(0)
            .expect_bus(Some(BusOp::ReadMod))
            .run()
            .unwrap_err();
        assert!(err.message.contains("ReadMod"));
        assert_eq!(err.step, 1);
        assert!(err.to_string().contains("wrong-bus"));
    }

    #[test]
    fn wrong_state_is_reported() {
        let err = Scenario::new("wrong-state", 2, ModSet::new())
            .read(0)
            .expect_state(0, CacheState::ExclusiveDirty)
            .run()
            .unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn expect_bus_requires_a_reference() {
        let err = Scenario::new("dangling", 1, ModSet::new())
            .expect_bus(None)
            .run()
            .unwrap_err();
        assert!(err.message.contains("must follow"));
    }

    #[test]
    fn out_of_range_actor_is_reported() {
        let err = Scenario::new("oob", 2, ModSet::new()).read(5).run().unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn purge_clears_state() {
        Scenario::new("purge", 1, ModSet::new())
            .read(0)
            .purge(0)
            .expect_state(0, CacheState::Invalid)
            .run()
            .unwrap();
    }
}
