//! A minimal, std-only HTTP/1.1 layer: just enough protocol for the
//! evaluation daemon — request parsing with bounded head/body sizes,
//! `Expect: 100-continue` support (curl sends it for JSON bodies), and
//! response writers for both fixed-length and chunked (streaming)
//! replies. Every connection serves exactly one request and closes
//! (`Connection: close`), which keeps the worker loop trivial and makes
//! backpressure accounting exact: one queue slot is one request.

use std::io::{Read, Write};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body, in bytes (a scenario batch far larger
/// than this should be split by the client).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// The request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the target, query string stripped.
    pub path: String,
    /// `key=value` pairs of the query string, in order; flag-style keys
    /// without `=` carry an empty value.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names and trimmed values, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The first query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending anything — a
    /// normal event (health probes, cancelled clients), not an error to
    /// report.
    Closed,
    /// Transport failure (timeout, reset) mid-request.
    Io(String),
    /// The bytes do not parse as an HTTP/1.1 request.
    Malformed(String),
    /// Head or body exceeds the configured bound (maps to `413`).
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => f.write_str("connection closed before a request"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
            HttpError::Malformed(e) => write!(f, "malformed request: {e}"),
            HttpError::TooLarge(e) => write!(f, "request too large: {e}"),
        }
    }
}

/// Reads and parses one request from the stream, answering
/// `Expect: 100-continue` inline so body-bearing clients proceed.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean immediate EOF; [`HttpError::Io`] /
/// [`HttpError::Malformed`] / [`HttpError::TooLarge`] otherwise.
pub fn read_request<S: Read + Write>(stream: &mut S) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the head; whatever arrives
    // past it is the start of the body.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut tmp).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed("connection closed mid-head".to_string()));
        }
        buf.extend_from_slice(&tmp[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad request line {request_line:?}")));
    }
    let (path, query) = parse_target(&target);

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }

    // curl (and other strict clients) withhold a large body until the
    // server blesses the request head.
    if headers
        .iter()
        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"))
    {
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| stream.flush())
            .map_err(|e| HttpError::Io(e.to_string()))?;
    }

    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let n = stream.read(&mut tmp).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Malformed(format!(
                "connection closed after {} of {content_length} body bytes",
                body.len()
            )));
        }
        body.extend_from_slice(&tmp[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method, path, query, headers, body })
}

/// Position of the `\r\n\r\n` separating head from body.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into path and parsed query pairs. No percent
/// decoding: the daemon's parameters are plain tokens.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// Canonical reason phrase for the status codes the daemon uses.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response (and flushes). Extra headers
/// are emitted verbatim after the standard set.
///
/// # Errors
///
/// Propagates transport errors; the caller just drops the connection.
pub fn write_response<W: Write>(
    out: &mut W,
    code: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        status_text(code),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    out.write_all(head.as_bytes())?;
    out.write_all(body)?;
    out.flush()
}

/// Convenience: a JSON error body `{"error": …}` with the given status.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_error<W: Write>(out: &mut W, code: u16, message: &str) -> std::io::Result<()> {
    let body = format!("{{\"error\":{}}}\n", json_string(message));
    write_response(out, code, "application/json", &[], body.as_bytes())
}

/// A chunked-transfer response in progress: the head is written on
/// construction, each [`ChunkedWriter::chunk`] flushes one chunk (so
/// clients see results as they complete), and [`ChunkedWriter::finish`]
/// terminates the stream.
pub struct ChunkedWriter<'a, W: Write> {
    out: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Starts a chunked response with the given status and content type.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn start(out: &'a mut W, code: u16, content_type: &str) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(code)
        );
        out.write_all(head.as_bytes())?;
        out.flush()?;
        Ok(ChunkedWriter { out })
    }

    /// Writes one chunk and flushes it to the client. Empty data is
    /// skipped (an empty chunk would terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.out, "{:x}\r\n", data.len())?;
        self.out.write_all(data)?;
        self.out.write_all(b"\r\n")?;
        self.out.flush()
    }

    /// Terminates the chunked stream.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(self) -> std::io::Result<()> {
        self.out.write_all(b"0\r\n\r\n")?;
        self.out.flush()
    }
}

/// Serializes a string as a JSON string literal (the subset of escaping
/// the daemon's own messages need).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test stream: reads from a canned request, captures writes.
    struct Duplex {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Duplex {
        fn new(input: &[u8]) -> Self {
            Duplex { input: std::io::Cursor::new(input.to_vec()), output: Vec::new() }
        }
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let mut s = Duplex::new(
            b"POST /eval?backends=mva&stream HTTP/1.1\r\n\
              Host: localhost\r\nContent-Length: 5\r\n\r\nhello",
        );
        let req = read_request(&mut s).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/eval");
        assert_eq!(req.query_param("backends"), Some("mva"));
        assert_eq!(req.query_param("stream"), Some(""));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn answers_expect_100_continue_before_reading_the_body() {
        let mut s = Duplex::new(
            b"POST /eval HTTP/1.1\r\nExpect: 100-continue\r\n\
              Content-Length: 2\r\n\r\nok",
        );
        let req = read_request(&mut s).unwrap();
        assert_eq!(req.body, b"ok");
        let written = String::from_utf8(s.output).unwrap();
        assert!(written.starts_with("HTTP/1.1 100 Continue\r\n\r\n"), "{written}");
    }

    #[test]
    fn rejects_garbage_and_oversized_requests() {
        let mut s = Duplex::new(b"NOT AN HTTP REQUEST\r\n\r\n");
        assert!(matches!(read_request(&mut s), Err(HttpError::Malformed(_))));

        let mut s = Duplex::new(b"");
        assert!(matches!(read_request(&mut s), Err(HttpError::Closed)));

        let huge = format!(
            "POST /eval HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut s = Duplex::new(huge.as_bytes());
        assert!(matches!(read_request(&mut s), Err(HttpError::TooLarge(_))));

        let mut s = Duplex::new(b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        assert!(matches!(read_request(&mut s), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn fixed_and_chunked_responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", &[("Retry-After", "1".into())], b"{}")
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");

        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, "application/x-ndjson").unwrap();
        w.chunk(b"line one\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, must not terminate the stream
        w.chunk(b"line two\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("9\r\nline one\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }

    #[test]
    fn json_string_escapes_the_awkward_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
