//! Prometheus text exposition (format 0.0.4) over the live probe
//! snapshot plus the daemon's own gauges.
//!
//! The JSON `/metrics` body is the source of truth for tooling inside
//! this workspace; this module is the bridge to everything outside it:
//! any standard scraper can consume `GET /metrics?format=prometheus`
//! without knowing the `snoop-metrics-v2` schema.
//!
//! # Mapping
//!
//! Probe metric names are dotted paths (`serve.queue_wait_ms`), which
//! are not valid Prometheus metric names — and sanitizing dots into
//! underscores invites collisions. Instead each probe section becomes
//! one metric *family* with the probe name carried as a `name` label:
//!
//! * counters  → `snoop_counter_total{name="..."}`
//! * events    → `snoop_event_count_total` / `_sum` / `_min` / `_max`
//! * spans     → `snoop_span_calls_total` / `snoop_span_seconds_total`
//! * histograms → `snoop_hist_bucket{name="...",le="..."}` /
//!   `snoop_hist_sum` / `snoop_hist_count` — a native Prometheus
//!   histogram: cumulative bucket counts, closed with `le="+Inf"`.
//!
//! Two families are first-class rather than label-mapped: the RED
//! request counters, re-keyed from `serve.red.<endpoint>.<class>`
//! probe counters into `snoop_requests_total{endpoint,status}`, and
//! the daemon gauges (`snoop_queue_depth`, `snoop_inflight_requests`,
//! …) sampled from the server's own atomics at scrape time.

use std::fmt::Write as _;

use snoop_numeric::probe::Snapshot;

/// Point-in-time daemon state sampled by the scrape handler, rendered
/// as Prometheus gauges (and a few plain counters) alongside the probe
/// snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerGauges {
    /// Seconds since the daemon started serving.
    pub uptime_seconds: f64,
    /// Connections accepted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Requests currently being handled by workers.
    pub inflight: u64,
    /// Request worker threads.
    pub workers: u64,
    /// Bounded submission-queue capacity.
    pub queue_bound: u64,
    /// Requests fully read and routed over the daemon's lifetime.
    pub requests_total: u64,
    /// Connections refused with `429` over the daemon's lifetime.
    pub rejected_total: u64,
    /// (scenario, backend) jobs answered via `POST /eval`.
    pub eval_jobs_total: u64,
    /// Access-log lines dropped because the logger channel was full.
    pub log_dropped_total: u64,
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline must be escaped, everything else is literal.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 the way Prometheus clients expect: decimal, no
/// exponent for ordinary magnitudes, `+Inf` for the terminal bucket.
fn format_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.9e}")
    }
}

/// Renders the full exposition body. Families appear at most once, each
/// introduced by a single `# TYPE` line; series within a family are
/// unique by label set.
#[must_use]
pub fn render(snapshot: &Snapshot, gauges: &ServerGauges) -> String {
    let mut out = String::with_capacity(4096);

    // Daemon gauges and lifetime counters.
    let singles: [(&str, &str, f64); 9] = [
        ("snoop_uptime_seconds", "gauge", gauges.uptime_seconds),
        ("snoop_queue_depth", "gauge", gauges.queue_depth as f64),
        ("snoop_inflight_requests", "gauge", gauges.inflight as f64),
        ("snoop_workers", "gauge", gauges.workers as f64),
        ("snoop_queue_bound", "gauge", gauges.queue_bound as f64),
        ("snoop_http_requests_total", "counter", gauges.requests_total as f64),
        ("snoop_http_rejected_total", "counter", gauges.rejected_total as f64),
        ("snoop_eval_jobs_total", "counter", gauges.eval_jobs_total as f64),
        ("snoop_log_dropped_total", "counter", gauges.log_dropped_total as f64),
    ];
    for (name, kind, value) in singles {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {}", format_value(value));
    }

    // RED request counters: probe counters named
    // `serve.red.<endpoint>.<class>` become the canonical
    // `snoop_requests_total{endpoint,status}` family; everything else
    // stays in the generic counter family below.
    let mut red: Vec<(&str, &str, u64)> = Vec::new();
    let mut plain: Vec<(&str, u64)> = Vec::new();
    for (name, value) in &snapshot.counters {
        match name.strip_prefix("serve.red.").and_then(|rest| rest.split_once('.')) {
            Some((endpoint, class)) => red.push((endpoint, class, *value)),
            None => plain.push((name, *value)),
        }
    }
    if !red.is_empty() {
        out.push_str("# TYPE snoop_requests_total counter\n");
        for (endpoint, class, value) in red {
            let _ = writeln!(
                out,
                "snoop_requests_total{{endpoint=\"{}\",status=\"{}\"}} {value}",
                escape_label(endpoint),
                escape_label(class),
            );
        }
    }
    if !plain.is_empty() {
        out.push_str("# TYPE snoop_counter_total counter\n");
        for (name, value) in plain {
            let _ = writeln!(
                out,
                "snoop_counter_total{{name=\"{}\"}} {value}",
                escape_label(name)
            );
        }
    }

    // Spans: calls and cumulative seconds, both counters.
    if !snapshot.spans.is_empty() {
        out.push_str("# TYPE snoop_span_calls_total counter\n");
        for (path, s) in &snapshot.spans {
            let _ = writeln!(
                out,
                "snoop_span_calls_total{{name=\"{}\"}} {}",
                escape_label(path),
                s.count
            );
        }
        out.push_str("# TYPE snoop_span_seconds_total counter\n");
        for (path, s) in &snapshot.spans {
            let _ = writeln!(
                out,
                "snoop_span_seconds_total{{name=\"{}\"}} {}",
                escape_label(path),
                format_value(s.total_ns as f64 / 1e9)
            );
        }
    }

    // Event recorders: lifetime count/sum plus min/max gauges (the
    // ring's recent window stays JSON-only — a scraper wants the
    // aggregates, not raw samples).
    if !snapshot.events.is_empty() {
        out.push_str("# TYPE snoop_event_count_total counter\n");
        for (name, e) in &snapshot.events {
            let _ = writeln!(
                out,
                "snoop_event_count_total{{name=\"{}\"}} {}",
                escape_label(name),
                e.count
            );
        }
        out.push_str("# TYPE snoop_event_sum counter\n");
        for (name, e) in &snapshot.events {
            let _ = writeln!(
                out,
                "snoop_event_sum{{name=\"{}\"}} {}",
                escape_label(name),
                format_value(e.sum)
            );
        }
        out.push_str("# TYPE snoop_event_min gauge\n");
        for (name, e) in &snapshot.events {
            let min = if e.count == 0 { 0.0 } else { e.min };
            let _ = writeln!(
                out,
                "snoop_event_min{{name=\"{}\"}} {}",
                escape_label(name),
                format_value(min)
            );
        }
        out.push_str("# TYPE snoop_event_max gauge\n");
        for (name, e) in &snapshot.events {
            let max = if e.count == 0 { 0.0 } else { e.max };
            let _ = writeln!(
                out,
                "snoop_event_max{{name=\"{}\"}} {}",
                escape_label(name),
                format_value(max)
            );
        }
    }

    // Histograms: native Prometheus exposition. `cumulative_buckets`
    // already yields monotone cumulative counts over the non-empty
    // log-linear buckets; the mandatory `+Inf` bucket closes each
    // series at the total count.
    if !snapshot.hists.is_empty() {
        out.push_str("# TYPE snoop_hist histogram\n");
        for (name, h) in &snapshot.hists {
            let label = escape_label(name);
            for (le, cumulative) in h.cumulative_buckets() {
                let _ = writeln!(
                    out,
                    "snoop_hist_bucket{{name=\"{label}\",le=\"{}\"}} {cumulative}",
                    format_value(le)
                );
            }
            let _ = writeln!(
                out,
                "snoop_hist_bucket{{name=\"{label}\",le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(out, "snoop_hist_sum{{name=\"{label}\"}} {}", format_value(h.sum()));
            let _ = writeln!(out, "snoop_hist_count{{name=\"{label}\"}} {}", h.count());
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_numeric::probe::{hist, EventStats, SpanStats};

    fn snapshot_with(
        counters: Vec<(String, u64)>,
        hists: Vec<(String, hist::Hist)>,
    ) -> Snapshot {
        Snapshot { spans: Vec::new(), counters, events: Vec::new(), hists }
    }

    #[test]
    fn gauges_and_counters_render_with_type_lines() {
        let body = render(
            &snapshot_with(vec![("engine.cache.hits".to_string(), 7)], Vec::new()),
            &ServerGauges { queue_depth: 3, requests_total: 41, ..ServerGauges::default() },
        );
        assert!(body.contains("# TYPE snoop_queue_depth gauge\nsnoop_queue_depth 3\n"), "{body}");
        assert!(
            body.contains("# TYPE snoop_http_requests_total counter\nsnoop_http_requests_total 41\n"),
            "{body}"
        );
        assert!(
            body.contains("snoop_counter_total{name=\"engine.cache.hits\"} 7\n"),
            "{body}"
        );
    }

    #[test]
    fn red_counters_become_the_requests_total_family() {
        let body = render(
            &snapshot_with(
                vec![
                    ("serve.red.eval.2xx".to_string(), 5),
                    ("serve.red.eval.4xx".to_string(), 1),
                    ("serve.red.healthz.2xx".to_string(), 9),
                    ("serve.requests".to_string(), 15),
                ],
                Vec::new(),
            ),
            &ServerGauges::default(),
        );
        assert!(
            body.contains("snoop_requests_total{endpoint=\"eval\",status=\"2xx\"} 5\n"),
            "{body}"
        );
        assert!(
            body.contains("snoop_requests_total{endpoint=\"healthz\",status=\"2xx\"} 9\n"),
            "{body}"
        );
        // The non-RED counter stays in the generic family.
        assert!(body.contains("snoop_counter_total{name=\"serve.requests\"} 15\n"), "{body}");
        // Exactly one TYPE line for the family.
        assert_eq!(body.matches("# TYPE snoop_requests_total counter").count(), 1, "{body}");
    }

    #[test]
    fn histograms_expose_monotone_buckets_closed_by_inf() {
        let mut h = hist::Hist::new();
        for v in [0.5, 1.0, 2.0, 4.0, 100.0] {
            assert!(h.record(v));
        }
        let body = render(
            &snapshot_with(Vec::new(), vec![("serve.queue_wait_ms".to_string(), h)]),
            &ServerGauges::default(),
        );
        let mut last = 0u64;
        let mut buckets = 0;
        for line in body.lines() {
            let Some(rest) = line.strip_prefix("snoop_hist_bucket{name=\"serve.queue_wait_ms\"")
            else {
                continue;
            };
            buckets += 1;
            let count: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "non-monotone bucket in {body}");
            last = count;
        }
        assert!(buckets >= 2, "{body}");
        assert!(
            body.contains("snoop_hist_bucket{name=\"serve.queue_wait_ms\",le=\"+Inf\"} 5\n"),
            "{body}"
        );
        assert!(body.contains("snoop_hist_count{name=\"serve.queue_wait_ms\"} 5\n"), "{body}");
        assert!(body.contains("snoop_hist_sum{name=\"serve.queue_wait_ms\"}"), "{body}");
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        let body = render(
            &snapshot_with(vec![("weird\"name\\with\nstuff".to_string(), 1)], Vec::new()),
            &ServerGauges::default(),
        );
        assert!(
            body.contains("snoop_counter_total{name=\"weird\\\"name\\\\with\\nstuff\"} 1\n"),
            "{body}"
        );
    }

    #[test]
    fn spans_and_events_render_once_per_family() {
        let snapshot = Snapshot {
            spans: vec![(
                "engine.job".to_string(),
                SpanStats { count: 4, total_ns: 2_000_000_000 },
            )],
            counters: Vec::new(),
            events: vec![(
                "serve.queue_depth".to_string(),
                EventStats {
                    recent: vec![1.0, 2.0],
                    dropped: 0,
                    dropped_non_finite: 0,
                    count: 2,
                    sum: 3.0,
                    min: 1.0,
                    max: 2.0,
                },
            )],
            hists: Vec::new(),
        };
        let body = render(&snapshot, &ServerGauges::default());
        assert!(body.contains("snoop_span_calls_total{name=\"engine.job\"} 4\n"), "{body}");
        assert!(body.contains("snoop_span_seconds_total{name=\"engine.job\"} 2\n"), "{body}");
        assert!(body.contains("snoop_event_count_total{name=\"serve.queue_depth\"} 2\n"), "{body}");
        assert!(body.contains("snoop_event_max{name=\"serve.queue_depth\"} 2\n"), "{body}");
    }
}
