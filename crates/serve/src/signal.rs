//! SIGTERM/SIGINT → one atomic flag, so the accept loop can notice a
//! termination request and drain gracefully instead of dying mid-batch.
//!
//! # The unsafe island
//!
//! Installing a handler requires one `signal(2)` FFI call (the symbol
//! comes from the libc `std` already links; no new dependency). The
//! handler body is a single relaxed atomic store — async-signal-safe by
//! construction: no allocation, no locks, no formatting. Nothing else
//! in this crate is `unsafe`; `lib.rs` scopes the allow to this module
//! the same way `snoop-numeric` scopes its executor island.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; polled by the accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM or SIGINT has been received since [`install`].
pub fn requested() -> bool {
    SIGNALLED.load(Ordering::Relaxed)
}

/// Installs the termination handler for SIGINT (2) and SIGTERM (15).
/// Idempotent; best-effort (a refused installation leaves the default
/// disposition, which still terminates the process).
#[cfg(unix)]
pub fn install() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal(2)` with a handler that only performs an atomic
    // store is async-signal-safe; both arguments are valid by
    // construction.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Non-unix fallback: ctrl-c keeps the default disposition (immediate
/// exit); `POST /shutdown` remains the graceful path.
#[cfg(not(unix))]
pub fn install() {}
