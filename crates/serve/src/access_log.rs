//! Structured NDJSON access logging from a dedicated writer thread.
//!
//! Request workers never touch the filesystem: they format one JSON
//! line and `try_send` it over a bounded channel. A single logger
//! thread drains the channel and appends to the log file, rotating by
//! size. When the channel is full the line is **dropped and counted**
//! (`log.dropped`) — a slow or failing disk can lose log lines, never
//! stall request handling or the accept loop.
//!
//! # Rotation
//!
//! When an append would push the current file past `max_bytes`, the
//! logger closes it and shifts the generation chain: `FILE.(keep-1)` is
//! deleted, every `FILE.i` becomes `FILE.(i+1)`, the live file becomes
//! `FILE.1`, and a fresh `FILE` is opened. With `keep = 3` the disk
//! holds at most `FILE`, `FILE.1` and `FILE.2`. Rotation failures (e.g.
//! permissions) are absorbed: the logger keeps appending to the live
//! file rather than losing lines.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How many formatted lines may wait for the logger thread before
/// overflow drops kick in.
const CHANNEL_BOUND: usize = 1024;

/// Access-log settings (all fixed at daemon startup).
#[derive(Debug, Clone)]
pub struct AccessLogConfig {
    /// The live log file; rotated generations get `.1`, `.2`, …
    pub path: PathBuf,
    /// Rotate when the live file would exceed this many bytes.
    pub max_bytes: u64,
    /// Total files kept on disk, live file included (minimum 1).
    pub keep: usize,
}

/// The worker-side handle: cheap to share, never blocks.
pub struct AccessLog {
    tx: Option<SyncSender<String>>,
    dropped: Arc<AtomicU64>,
    join: Option<JoinHandle<()>>,
}

impl AccessLog {
    /// Opens (or creates) the log file and starts the logger thread.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the live file — surfaced at startup, when
    /// the operator can still fix the path.
    pub fn open(config: AccessLogConfig) -> std::io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(&config.path)?;
        let size = file.metadata().map(|m| m.len()).unwrap_or(0);
        let (tx, rx) = mpsc::sync_channel::<String>(CHANNEL_BOUND);
        let dropped = Arc::new(AtomicU64::new(0));
        let join = std::thread::Builder::new()
            .name("snoop-access-log".to_string())
            .spawn(move || {
                let mut writer = Writer { config, file, size };
                // The loop ends when every sender is dropped *and* the
                // channel is drained — shutdown never loses queued lines.
                while let Ok(line) = rx.recv() {
                    writer.append(&line);
                }
                let _ = writer.file.flush();
            })?;
        Ok(AccessLog { tx: Some(tx), dropped, join: Some(join) })
    }

    /// Enqueues one NDJSON line (no trailing newline; the logger adds
    /// it). On a full channel the line is dropped and counted.
    pub fn log(&self, line: String) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(line) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                snoop_numeric::probe::counter_add("log.dropped", 1);
            }
        }
    }

    /// Lines dropped so far because the logger could not keep up.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for AccessLog {
    /// Graceful close: drop the sender so the logger drains the queue,
    /// then join it (flushing the file) before returning.
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Logger-thread state: the open live file and its running size.
struct Writer {
    config: AccessLogConfig,
    file: File,
    size: u64,
}

impl Writer {
    fn append(&mut self, line: &str) {
        let added = line.len() as u64 + 1;
        if self.size + added > self.config.max_bytes && self.size > 0 {
            self.rotate();
        }
        if self.file.write_all(line.as_bytes()).is_ok()
            && self.file.write_all(b"\n").is_ok()
        {
            self.size += added;
        }
    }

    /// Shifts the generation chain and reopens a fresh live file. Any
    /// step may fail (races with external cleanup, permissions); the
    /// fallback is always "keep writing where we are".
    fn rotate(&mut self) {
        let _ = self.file.flush();
        let generation = |i: usize| {
            let mut path = self.config.path.clone().into_os_string();
            path.push(format!(".{i}"));
            PathBuf::from(path)
        };
        let keep = self.config.keep.max(1);
        // Delete the oldest allowed generation, then shift the rest up.
        let _ = std::fs::remove_file(generation(keep.saturating_sub(1).max(1)));
        for i in (1..keep.saturating_sub(1)).rev() {
            let _ = std::fs::rename(generation(i), generation(i + 1));
        }
        if keep > 1 {
            let _ = std::fs::rename(&self.config.path, generation(1));
        } else {
            // keep = 1: no rotated generations, truncate in place.
            let _ = std::fs::remove_file(&self.config.path);
        }
        if let Ok(fresh) =
            OpenOptions::new().create(true).append(true).open(&self.config.path)
        {
            self.file = fresh;
            self.size = self.file.metadata().map(|m| m.len()).unwrap_or(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "snoop-access-log-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lines_arrive_in_order_and_survive_drop() {
        let dir = temp_dir("order");
        let path = dir.join("access.log");
        let log = AccessLog::open(AccessLogConfig {
            path: path.clone(),
            max_bytes: 1 << 20,
            keep: 3,
        })
        .unwrap();
        for i in 0..50 {
            log.log(format!("{{\"seq\":{i}}}"));
        }
        drop(log); // joins the logger thread, flushing everything
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 50, "{text}");
        assert_eq!(lines[0], "{\"seq\":0}");
        assert_eq!(lines[49], "{\"seq\":49}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_at_most_n_generations() {
        let dir = temp_dir("rotate");
        let path = dir.join("access.log");
        let log = AccessLog::open(AccessLogConfig {
            path: path.clone(),
            max_bytes: 256,
            keep: 3,
        })
        .unwrap();
        // Each line is ~100 bytes; 20 lines forces several rotations.
        for i in 0..20 {
            log.log(format!("{{\"seq\":{i},\"pad\":\"{}\"}}", "x".repeat(80)));
        }
        drop(log);
        assert!(path.exists());
        assert!(dir.join("access.log.1").exists());
        assert!(dir.join("access.log.2").exists());
        assert!(!dir.join("access.log.3").exists(), "keep=3 means live + 2 generations");
        // Every surviving line is intact NDJSON and sizes respect the cap.
        for name in ["access.log", "access.log.1", "access.log.2"] {
            let text = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(text.len() as u64 <= 256 + 128, "{name} too large: {}", text.len());
            for line in text.lines() {
                assert!(line.starts_with("{\"seq\":"), "{name}: {line}");
                assert!(line.ends_with('}'), "{name}: {line}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        // A logger whose file lives in an unwritable location still
        // accepts sends; here we instead simply flood faster than the
        // bound. Use a tiny channel via many sends before the thread
        // can drain on a loaded machine — the contract under test is
        // only "log() never blocks and dropped() accounts for misses".
        let dir = temp_dir("overflow");
        let path = dir.join("access.log");
        let log = AccessLog::open(AccessLogConfig {
            path: path.clone(),
            max_bytes: 1 << 20,
            keep: 1,
        })
        .unwrap();
        let sent: u64 = 5000;
        for i in 0..sent {
            log.log(format!("{{\"seq\":{i}}}"));
        }
        let dropped = log.dropped();
        drop(log);
        let written = std::fs::read_to_string(&path).unwrap().lines().count() as u64;
        assert_eq!(written + dropped, sent, "written={written} dropped={dropped}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
