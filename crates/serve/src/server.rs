//! The daemon: one warm shared [`Engine`] behind an acceptor thread, a
//! bounded submission queue and a small pool of request workers.
//!
//! # Structure
//!
//! ```text
//! accept loop ── try_send ──► sync_channel(queue_bound) ──► worker 0..K
//!     │                │                                      │
//!     │                └─ full → 429 + Retry-After             ├─ POST /eval   (streams NDJSON)
//!     └─ shutdown flag (SIGTERM / ctrl-c / POST /shutdown)     ├─ GET  /metrics
//!                                                              └─ GET  /healthz
//! ```
//!
//! The bounded channel *is* the backpressure: one queue slot is one
//! pending connection, `try_send` never blocks the acceptor, and a full
//! queue answers `429` immediately instead of growing a backlog. On
//! shutdown the acceptor stops accepting and drops the sender; workers
//! drain every queued connection, finish their in-flight requests, and
//! exit when the channel disconnects — nothing accepted is ever dropped.
//!
//! Determinism per request is preserved because every request goes
//! through the same engine path as the batch CLI: scenarios are
//! content-hashed, cache hits are bit-identical to fresh computations,
//! and concurrent requests only share state through the engine's
//! interior-locked cache and the store's atomic publishes.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use snoop_mva::engine::{
    BackendId, DiskStore, Engine, GtpnBackend, MvaBackend, ResilientMvaBackend, Scenario,
    SimBackend, StoreConfig, StoreError,
};
use snoop_numeric::exec::ExecOptions;
use snoop_numeric::json::format_f64;
use snoop_numeric::probe;

use crate::access_log::{AccessLog, AccessLogConfig};
use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::metrics::{self, ServerGauges};
use crate::signal;

/// How long a worker waits on a slow client before giving up on the
/// connection (read and write).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Accept-loop poll interval while idle or waiting for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Cap on concurrent 429-rejection helper threads; past it, over-limit
/// connections are dropped without a response.
const MAX_REJECT_THREADS: usize = 32;

/// Answers a rejected connection with `429`, reading the request first
/// so the close is clean (tight timeouts: the client already lost).
fn reject_with_429(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = http::read_request(&mut stream);
    let _ = http::write_response(
        &mut stream,
        429,
        "application/json",
        &[("Retry-After", "1".to_string())],
        b"{\"error\":\"evaluation queue is full, retry shortly\"}\n",
    );
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (`:0` for an ephemeral
    /// port).
    pub listen: String,
    /// Request worker threads (concurrent in-flight requests).
    pub workers: usize,
    /// Bounded submission-queue capacity; a connection beyond the
    /// workers' in-flight ones waits here, and past that clients get
    /// `429`.
    pub queue_bound: usize,
    /// Backends registered on the shared engine.
    pub backends: Vec<BackendId>,
    /// Engine executor threads (0 = auto: `SNOOP_THREADS` or cores).
    pub engine_threads: usize,
    /// In-memory result-cache capacity (`None`: engine default).
    pub cache_capacity: Option<usize>,
    /// Durable second cache tier (`None`: in-memory only).
    pub store_dir: Option<PathBuf>,
    /// Store eviction bound (`None`: unbounded).
    pub store_max_entries: Option<usize>,
    /// NDJSON access-log file (`None`: no access log).
    pub access_log: Option<PathBuf>,
    /// Access-log rotation threshold in MiB.
    pub access_log_max_mb: u64,
    /// Access-log files kept on disk, live file included.
    pub access_log_keep: usize,
    /// Build identity reported by `GET /healthz` (`None`: unknown).
    pub git_sha: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:7077".to_string(),
            workers: 2,
            queue_bound: 64,
            backends: vec![BackendId::Mva],
            engine_threads: 0,
            cache_capacity: None,
            store_dir: None,
            store_max_entries: None,
            access_log: None,
            access_log_max_mb: 64,
            access_log_keep: 3,
            git_sha: None,
        }
    }
}

/// Why the daemon could not start (request-level failures never surface
/// here — they answer the offending client and the daemon carries on).
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying error text.
        error: String,
    },
    /// The durable store could not be opened.
    Store(StoreError),
    /// A socket-level operation failed during startup.
    Io {
        /// What the daemon was doing.
        context: &'static str,
        /// The underlying error text.
        error: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, error } => write!(f, "cannot listen on {addr}: {error}"),
            ServeError::Store(e) => write!(f, "{e}"),
            ServeError::Io { context, error } => write!(f, "cannot {context}: {error}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What the daemon did over its lifetime, reported after a graceful
/// shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Requests fully read and routed (all endpoints).
    pub requests: u64,
    /// (scenario, backend) evaluation jobs answered via `POST /eval`.
    pub eval_jobs: u64,
    /// Connections refused with `429` because the queue was full.
    pub rejected: u64,
    /// Engine cache hits at shutdown.
    pub cache_hits: u64,
    /// Engine cache misses at shutdown.
    pub cache_misses: u64,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve: {} request(s), {} eval job(s), {} rejected (429); \
             cache hits={} misses={}",
            self.requests, self.eval_jobs, self.rejected, self.cache_hits, self.cache_misses
        )
    }
}

/// A cloneable handle that requests a graceful shutdown, equivalent to
/// SIGTERM: stop accepting, drain, return.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown; [`Server::run`] notices within one accept
    /// poll.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }
}

/// One accepted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// State shared by the acceptor and every worker.
struct Shared {
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    /// Connections accepted but not yet picked up by a worker.
    depth: AtomicUsize,
    /// Requests currently inside a worker's `handle`.
    inflight: AtomicUsize,
    requests: AtomicU64,
    eval_jobs: AtomicU64,
    rejected: AtomicU64,
    /// When the daemon started serving (healthz uptime, gauge scrapes).
    started: Instant,
    /// Static identity echoed by `GET /healthz`.
    workers: u64,
    queue_bound: u64,
    git_sha: Option<String>,
    access_log: Option<AccessLog>,
}

/// What one routed request did, for RED accounting and access logging.
struct RouteMeta {
    status: u16,
    /// (scenario, backend) jobs this request evaluated (`/eval` only).
    jobs: u64,
    /// How many of those jobs were cache hits.
    cached: u64,
}

impl RouteMeta {
    fn status(status: u16) -> RouteMeta {
        RouteMeta { status, jobs: 0, cached: 0 }
    }
}

/// The stable endpoint label used in RED counter names, service-time
/// histogram names and access-log lines.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/eval" => "eval",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/shutdown" => "shutdown",
        _ => "other",
    }
}

/// A write-through wrapper that counts response bytes for the access
/// log (request handlers only ever write; reads happen before routing).
struct Counting<'a> {
    inner: &'a mut TcpStream,
    written: u64,
}

impl Write for Counting<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The bound-but-not-yet-running daemon. [`Server::bind`] resolves the
/// address (so an ephemeral `:0` port is known before any traffic) and
/// builds the shared engine; [`Server::run`] blocks until shutdown.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    engine: Arc<Engine>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen address and builds the shared warm engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] for an unusable address, [`ServeError::Store`]
    /// for an unopenable store directory.
    pub fn bind(config: ServeConfig) -> Result<Server, ServeError> {
        let engine = Arc::new(build_engine(&config)?);
        let listener = TcpListener::bind(&config.listen).map_err(|e| ServeError::Bind {
            addr: config.listen.clone(),
            error: e.to_string(),
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io { context: "resolve local address", error: e.to_string() })?;
        Ok(Server { listener, addr, engine, config, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The actually-bound address (the ephemeral port when `:0` was
    /// requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that triggers graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown) }
    }

    /// The shared engine (tests inspect cache stats through it).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Runs the daemon until shutdown (SIGTERM, ctrl-c, `POST
    /// /shutdown` or a [`ShutdownHandle`]), then drains queued and
    /// in-flight requests and returns the lifetime summary.
    ///
    /// Holds the process-wide probe session for its lifetime, so `GET
    /// /metrics` serves live counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the listener cannot be switched to
    /// non-blocking accept polling.
    pub fn run(self) -> Result<ServeSummary, ServeError> {
        signal::install();
        let _metrics = probe::session();
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io { context: "configure listener", error: e.to_string() })?;

        let access_log = match &self.config.access_log {
            Some(path) => Some(
                AccessLog::open(AccessLogConfig {
                    path: path.clone(),
                    max_bytes: self.config.access_log_max_mb.max(1) * (1 << 20),
                    keep: self.config.access_log_keep.max(1),
                })
                .map_err(|e| ServeError::Io {
                    context: "open access log",
                    error: e.to_string(),
                })?,
            ),
            None => None,
        };

        let (tx, rx) = mpsc::sync_channel::<Job>(self.config.queue_bound.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            engine: Arc::clone(&self.engine),
            shutdown: Arc::clone(&self.shutdown),
            depth: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            eval_jobs: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            started: Instant::now(),
            workers: self.config.workers.max(1) as u64,
            queue_bound: self.config.queue_bound.max(1) as u64,
            git_sha: self.config.git_sha.clone(),
            access_log,
        });

        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("snoop-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing;
                        // a disconnected-and-empty channel ends the
                        // worker (the drain contract: everything queued
                        // before disconnect is still delivered).
                        let job = {
                            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                shared.depth.fetch_sub(1, Ordering::Relaxed);
                                shared.handle(job);
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn serve worker")
            })
            .collect();

        let rejecters = Arc::new(AtomicUsize::new(0));
        while !self.shutdown.load(Ordering::Relaxed) && !signal::requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    probe::counter_add("serve.accepted", 1);
                    // Count the job before enqueuing it: a worker may
                    // dequeue (and decrement) before try_send returns.
                    let depth = shared.depth.fetch_add(1, Ordering::Relaxed) + 1;
                    match tx.try_send(Job { stream, accepted: Instant::now() }) {
                        Ok(()) => {
                            probe::record("serve.queue_depth", depth as f64);
                        }
                        Err(TrySendError::Full(job)) => {
                            shared.depth.fetch_sub(1, Ordering::Relaxed);
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                            probe::counter_add("serve.http_429", 1);
                            // Rejecting politely means reading the
                            // request first (closing with unread data
                            // resets the connection and the client
                            // never sees the 429), which can block on a
                            // slow client — do it off the accept loop,
                            // with a bound so a flood cannot pile up
                            // threads (beyond it the connection is
                            // simply dropped).
                            if rejecters.fetch_add(1, Ordering::Relaxed) < MAX_REJECT_THREADS {
                                let rejecters = Arc::clone(&rejecters);
                                std::thread::spawn(move || {
                                    reject_with_429(job.stream);
                                    rejecters.fetch_sub(1, Ordering::Relaxed);
                                });
                            } else {
                                rejecters.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }

        // Graceful drain: no new connections; dropping the sender lets
        // workers finish every queued and in-flight request, then exit.
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        // The store tier is write-through (every computed group is
        // already published), so "flush" is only accounting.
        let cache = self.engine.cache_stats();
        Ok(ServeSummary {
            requests: shared.requests.load(Ordering::Relaxed),
            eval_jobs: shared.eval_jobs.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        })
    }
}

/// Builds the shared engine from the configured backends, cache bound
/// and optional store tier (mirrors `snoop eval`'s wiring).
fn build_engine(config: &ServeConfig) -> Result<Engine, ServeError> {
    let exec = ExecOptions::with_threads(config.engine_threads);
    let mut engine = Engine::new().with_exec(exec);
    if let Some(capacity) = config.cache_capacity {
        engine = engine.with_cache_capacity(capacity);
    }
    for id in &config.backends {
        engine = match id {
            BackendId::Mva => engine.with_backend(MvaBackend),
            BackendId::ResilientMva => engine.with_backend(ResilientMvaBackend::default()),
            BackendId::Sim => engine.with_backend(SimBackend { exec }),
            BackendId::Gtpn => engine.with_backend(GtpnBackend { threads: exec.threads }),
        };
    }
    if let Some(dir) = &config.store_dir {
        let store_config = StoreConfig {
            max_entries: config.store_max_entries,
            ..StoreConfig::default()
        };
        let store = DiskStore::open_config(dir, store_config).map_err(ServeError::Store)?;
        engine = engine.with_store(Arc::new(store));
    }
    Ok(engine)
}

impl Shared {
    /// Serves one connection end to end. Never panics the process: the
    /// router runs under `catch_unwind`, so the worst any request can
    /// do is cost itself a `500`.
    fn handle(&self, job: Job) {
        let mut stream = job.stream;
        let waited_ms = job.accepted.elapsed().as_secs_f64() * 1e3;
        probe::record("serve.queue_wait_ms", waited_ms);
        probe::hist_record("serve.queue_wait_ms", waited_ms);
        // Accepted sockets may inherit the listener's non-blocking mode
        // on some platforms; request handling wants plain blocking IO
        // with timeouts.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
        let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));
        let _ = stream.set_nodelay(true);

        let request = match http::read_request(&mut stream) {
            Ok(request) => request,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(e)) => {
                probe::counter_add("serve.http_400", 1);
                let _ = http::write_error(&mut stream, 400, &e);
                return;
            }
            Err(HttpError::TooLarge(e)) => {
                probe::counter_add("serve.http_413", 1);
                let _ = http::write_error(&mut stream, 413, &e);
                return;
            }
        };
        self.requests.fetch_add(1, Ordering::Relaxed);
        probe::counter_add("serve.requests", 1);

        let endpoint = endpoint_label(&request.path);
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let service_started = Instant::now();
        let mut counting = Counting { inner: &mut stream, written: 0 };
        let outcome =
            catch_unwind(AssertUnwindSafe(|| self.route(&mut counting, &request, waited_ms)));
        let meta = match outcome {
            Ok(Ok(meta)) => meta,
            // Transport errors mid-response just lose that client;
            // status 0 marks the truncated exchange in RED and the log.
            Ok(Err(_io)) => RouteMeta::status(0),
            Err(_panic) => {
                probe::counter_add("serve.panics", 1);
                let _ = http::write_error(
                    &mut counting,
                    500,
                    "internal error: request handler panicked; see server log",
                );
                RouteMeta::status(500)
            }
        };
        let service_ms = service_started.elapsed().as_secs_f64() * 1e3;
        let bytes = counting.written;
        self.inflight.fetch_sub(1, Ordering::Relaxed);

        // RED accounting: one counter per (endpoint, status class), one
        // service-time histogram per endpoint. The `serve.red.*` names
        // are re-keyed into `snoop_requests_total{endpoint,status}` by
        // the Prometheus renderer.
        let class = match meta.status {
            0 => "io",
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        probe::counter_add(&format!("serve.red.{endpoint}.{class}"), 1);
        probe::hist_record(&format!("serve.service_ms.{endpoint}"), service_ms);

        if let Some(log) = &self.access_log {
            let ts = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0);
            log.log(format!(
                "{{\"ts\":{ts:.3},\"method\":{},\"path\":{},\"status\":{},\
                 \"bytes\":{bytes},\"queue_wait_ms\":{},\"service_ms\":{},\
                 \"jobs\":{},\"cache_hits\":{}}}",
                http::json_string(&request.method),
                http::json_string(&request.path),
                meta.status,
                format_f64(waited_ms),
                format_f64(service_ms),
                meta.jobs,
                meta.cached,
            ));
        }
    }

    /// The gauge block sampled at scrape time for the Prometheus body.
    fn gauges(&self) -> ServerGauges {
        ServerGauges {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            queue_depth: self.depth.load(Ordering::Relaxed) as u64,
            inflight: self.inflight.load(Ordering::Relaxed) as u64,
            workers: self.workers,
            queue_bound: self.queue_bound,
            requests_total: self.requests.load(Ordering::Relaxed),
            rejected_total: self.rejected.load(Ordering::Relaxed),
            eval_jobs_total: self.eval_jobs.load(Ordering::Relaxed),
            log_dropped_total: self.access_log.as_ref().map_or(0, AccessLog::dropped),
        }
    }

    fn route(
        &self,
        stream: &mut Counting<'_>,
        request: &Request,
        waited_ms: f64,
    ) -> std::io::Result<RouteMeta> {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                probe::counter_add("serve.requests.healthz", 1);
                let git_sha = match &self.git_sha {
                    Some(sha) => http::json_string(sha),
                    None => "null".to_string(),
                };
                let body = format!(
                    "{{\"status\":\"ok\",\"queue_depth\":{},\
                     \"uptime_seconds\":{},\"version\":{},\"git_sha\":{git_sha},\
                     \"workers\":{},\"queue_bound\":{},\"requests\":{}}}\n",
                    self.depth.load(Ordering::Relaxed),
                    format_f64(self.started.elapsed().as_secs_f64()),
                    http::json_string(env!("CARGO_PKG_VERSION")),
                    self.workers,
                    self.queue_bound,
                    self.requests.load(Ordering::Relaxed),
                );
                http::write_response(stream, 200, "application/json", &[], body.as_bytes())
                    .map(|()| RouteMeta::status(200))
            }
            ("GET", "/metrics") => {
                probe::counter_add("serve.requests.metrics", 1);
                match request.query_param("format") {
                    Some("prometheus") => {
                        let body = metrics::render(&probe::snapshot(), &self.gauges());
                        http::write_response(
                            stream,
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            &[],
                            body.as_bytes(),
                        )
                        .map(|()| RouteMeta::status(200))
                    }
                    None | Some("json") => {
                        let body = probe::snapshot().to_json();
                        http::write_response(stream, 200, "application/json", &[], body.as_bytes())
                            .map(|()| RouteMeta::status(200))
                    }
                    Some(other) => {
                        probe::counter_add("serve.http_400", 1);
                        http::write_error(
                            stream,
                            400,
                            &format!("unknown format {other:?}; have json, prometheus"),
                        )
                        .map(|()| RouteMeta::status(400))
                    }
                }
            }
            ("POST", "/shutdown") => {
                probe::counter_add("serve.requests.shutdown", 1);
                self.shutdown.store(true, Ordering::Relaxed);
                http::write_response(
                    stream,
                    200,
                    "application/json",
                    &[],
                    b"{\"status\":\"shutting down, draining in-flight work\"}\n",
                )
                .map(|()| RouteMeta::status(200))
            }
            ("POST", "/eval") => self.handle_eval(stream, request, waited_ms),
            (_, "/healthz" | "/metrics" | "/shutdown" | "/eval") => {
                probe::counter_add("serve.http_405", 1);
                http::write_error(
                    stream,
                    405,
                    &format!("{} is not supported on {}", request.method, request.path),
                )
                .map(|()| RouteMeta::status(405))
            }
            _ => {
                probe::counter_add("serve.http_404", 1);
                http::write_error(
                    stream,
                    404,
                    &format!(
                        "no endpoint {}; have POST /eval, GET /metrics, GET /healthz, \
                         POST /shutdown",
                        request.path
                    ),
                )
                .map(|()| RouteMeta::status(404))
            }
        }
    }

    /// `POST /eval`: parses a `snoop-scenario-v1` batch, evaluates
    /// scenario by scenario on the shared engine, and streams one JSON
    /// object per (scenario, backend) job as it completes, then a
    /// `"done"` summary line.
    fn handle_eval(
        &self,
        stream: &mut Counting<'_>,
        request: &Request,
        waited_ms: f64,
    ) -> std::io::Result<RouteMeta> {
        probe::counter_add("serve.requests.eval", 1);
        let started = Instant::now();
        let Ok(text) = std::str::from_utf8(&request.body) else {
            probe::counter_add("serve.http_400", 1);
            return http::write_error(stream, 400, "request body is not UTF-8")
                .map(|()| RouteMeta::status(400));
        };
        let scenarios = match Scenario::parse_batch(text) {
            Ok(scenarios) => scenarios,
            Err(e) => {
                probe::counter_add("serve.http_400", 1);
                return http::write_error(stream, 400, &e.to_string())
                    .map(|()| RouteMeta::status(400));
            }
        };
        probe::counter_add("serve.eval.scenarios", scenarios.len() as u64);

        let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson")?;
        let (mut jobs, mut errors, mut cached) = (0u64, 0u64, 0u64);
        for (index, scenario) in scenarios.iter().enumerate() {
            let hash = scenario.content_hash();
            for outcome in self.engine.evaluate(scenario) {
                jobs += 1;
                let line = match outcome.result {
                    Ok(mut eval) => {
                        if eval.provenance.cached {
                            cached += 1;
                        }
                        eval.provenance.queue_wait_ms = waited_ms;
                        format!(
                            "{{\"scenario\":{index},\"hash\":\"{hash:016x}\",\
                             \"backend\":\"{}\",\"key\":{},\"cached\":{},\
                             \"queue_wait_ms\":{},\"evaluation\":{}}}\n",
                            outcome.backend,
                            http::json_string(&outcome.key),
                            eval.provenance.cached,
                            format_f64(waited_ms),
                            eval.to_json(),
                        )
                    }
                    Err(e) => {
                        errors += 1;
                        format!(
                            "{{\"scenario\":{index},\"hash\":\"{hash:016x}\",\
                             \"backend\":\"{}\",\"key\":{},\"error\":{}}}\n",
                            outcome.backend,
                            http::json_string(&outcome.key),
                            http::json_string(&e.to_string()),
                        )
                    }
                };
                writer.chunk(line.as_bytes())?;
            }
        }
        self.eval_jobs.fetch_add(jobs, Ordering::Relaxed);
        probe::counter_add("serve.eval.jobs", jobs);
        let summary = format!(
            "{{\"done\":true,\"scenarios\":{},\"jobs\":{jobs},\"errors\":{errors},\
             \"cached\":{cached},\"wall_ms\":{}}}\n",
            scenarios.len(),
            format_f64(started.elapsed().as_secs_f64() * 1e3),
        );
        writer.chunk(summary.as_bytes())?;
        writer.finish()?;
        Ok(RouteMeta { status: 200, jobs, cached })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::SharingLevel;
    use std::io::Read as _;

    /// `run()` owns the process-wide probe session, so two concurrently
    /// booted servers would serialize on it while their test clients
    /// time out; hold this across every server-booting test instead.
    static SERVER_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn scenarios_json(sizes: &[usize]) -> String {
        let scenarios: Vec<Scenario> = sizes
            .iter()
            .map(|&n| Scenario::appendix_a(ModSet::new(), SharingLevel::Five, n))
            .collect();
        Scenario::batch_to_json(&scenarios)
    }

    /// A booted test server that shuts itself down when dropped, so a
    /// panicking test cannot leave a daemon holding the process-wide
    /// probe session (which would starve every later test).
    struct Booted {
        addr: SocketAddr,
        handle: ShutdownHandle,
        join: Option<std::thread::JoinHandle<ServeSummary>>,
    }

    impl Booted {
        fn stop(&mut self) -> ServeSummary {
            self.handle.shutdown();
            self.join.take().expect("not stopped twice").join().unwrap()
        }
    }

    impl Drop for Booted {
        fn drop(&mut self) {
            self.handle.shutdown();
            if let Some(join) = self.join.take() {
                let _ = join.join();
            }
        }
    }

    /// Boots a server on an ephemeral port.
    fn boot(config: ServeConfig) -> Booted {
        let server =
            Server::bind(ServeConfig { listen: "127.0.0.1:0".to_string(), ..config }).unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        Booted { addr, handle, join: Some(join) }
    }

    /// One full request over a fresh connection; returns (status, body)
    /// with chunked transfer decoding applied.
    fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        parse_response(&raw)
    }

    fn parse_response(raw: &[u8]) -> (u16, String) {
        let text = String::from_utf8_lossy(raw);
        let (head, body) = text.split_once("\r\n\r\n").expect("complete response head");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
            decode_chunked(body)
        } else {
            body.to_string()
        };
        (status, body)
    }

    fn decode_chunked(body: &str) -> String {
        let mut out = String::new();
        let mut rest = body;
        while let Some((size_line, tail)) = rest.split_once("\r\n") {
            let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else { break };
            if size == 0 {
                break;
            }
            out.push_str(&tail[..size]);
            rest = &tail[size + 2..]; // skip the chunk's trailing \r\n
        }
        out
    }

    fn post_eval(addr: SocketAddr, batch: &str) -> (u16, String) {
        roundtrip(
            addr,
            &format!(
                "POST /eval HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{batch}",
                batch.len()
            ),
        )
    }

    #[test]
    fn routes_health_metrics_errors_and_eval() {
        let _serial = SERVER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut srv = boot(ServeConfig::default());
        let addr = srv.addr;

        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (status, body) = roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 404);
        assert!(body.contains("POST /eval"), "{body}");

        let (status, _) = roundtrip(addr, "DELETE /eval HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);

        let (status, body) = post_eval(addr, "{\"schema\":\"wrong\",\"scenarios\":[]}");
        assert_eq!(status, 400);
        assert!(body.contains("unsupported schema"), "{body}");

        let batch = scenarios_json(&[2, 3]);
        let (status, body) = post_eval(addr, &batch);
        assert_eq!(status, 200);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3, "2 jobs + summary: {body}");
        assert!(lines[0].contains("\"backend\":\"mva\""), "{body}");
        assert!(lines[0].contains("\"cached\":false"), "{body}");
        assert!(lines[2].contains("\"done\":true"), "{body}");
        assert!(lines[2].contains("\"jobs\":2"), "{body}");
        assert!(lines[2].contains("\"errors\":0"), "{body}");

        // The repeat batch is a warm-cache pass, visible per line and
        // in /metrics.
        let (status, body) = post_eval(addr, &batch);
        assert_eq!(status, 200);
        assert!(body.lines().take(2).all(|l| l.contains("\"cached\":true")), "{body}");
        assert!(body.contains("\"cached\":2"), "{body}");

        let (status, metrics) = roundtrip(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(metrics.contains("snoop-metrics-v2"), "{metrics}");
        assert!(metrics.contains("\"serve.requests\""), "{metrics}");
        assert!(metrics.contains("\"engine.cache.hits\": 2"), "{metrics}");
        // RED counters and latency histograms are live in the snapshot.
        assert!(metrics.contains("\"serve.red.eval.2xx\""), "{metrics}");
        assert!(metrics.contains("\"serve.red.eval.4xx\""), "{metrics}");
        assert!(metrics.contains("\"serve.service_ms.eval\""), "{metrics}");
        assert!(metrics.contains("\"serve.queue_wait_ms\""), "{metrics}");

        let summary = srv.stop();
        assert!(summary.requests >= 6, "{summary:?}");
        assert_eq!(summary.eval_jobs, 4);
        assert_eq!(summary.cache_hits, 2);
    }

    #[test]
    fn full_queue_answers_429_and_drains_on_shutdown() {
        let _serial = SERVER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut srv = boot(ServeConfig { workers: 1, queue_bound: 1, ..ServeConfig::default() });
        let addr = srv.addr;
        let batch = scenarios_json(&[2]);

        // Occupy the single worker with a half-sent request…
        let mut holder = TcpStream::connect(addr).unwrap();
        holder.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        holder.write_all(b"POST /eval HTTP/1.1\r\nHost: t\r\n").unwrap();
        holder.flush().unwrap();
        std::thread::sleep(Duration::from_millis(300)); // worker picks it up

        // …fill the one queue slot…
        let mut queued = TcpStream::connect(addr).unwrap();
        queued.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let queued_request = format!(
            "POST /eval HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{batch}",
            batch.len()
        );
        queued.write_all(queued_request.as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(300)); // acceptor enqueues it

        // …and the next connection is turned away immediately.
        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("queue is full"), "{body}");

        // Finish the held request; both held and queued complete fine.
        holder
            .write_all(format!("Content-Length: {}\r\n\r\n{batch}", batch.len()).as_bytes())
            .unwrap();
        let mut raw = Vec::new();
        holder.read_to_end(&mut raw).unwrap();
        assert_eq!(parse_response(&raw).0, 200);
        let mut raw = Vec::new();
        queued.read_to_end(&mut raw).unwrap();
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 200);
        assert!(body.contains("\"done\":true"), "{body}");

        let summary = srv.stop();
        assert_eq!(summary.rejected, 1, "{summary:?}");
    }

    #[test]
    fn healthz_reports_identity_and_prometheus_scrape_is_valid() {
        let _serial = SERVER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut srv = boot(ServeConfig {
            workers: 3,
            queue_bound: 17,
            git_sha: Some("abc1234".to_string()),
            ..ServeConfig::default()
        });
        let addr = srv.addr;

        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"queue_depth\":"), "{body}");
        assert!(body.contains("\"uptime_seconds\":"), "{body}");
        assert!(body.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))), "{body}");
        assert!(body.contains("\"git_sha\":\"abc1234\""), "{body}");
        assert!(body.contains("\"workers\":3"), "{body}");
        assert!(body.contains("\"queue_bound\":17"), "{body}");
        assert!(body.contains("\"requests\":"), "{body}");

        // Drive one eval so histograms and RED counters exist.
        let (status, _) = post_eval(addr, &scenarios_json(&[2]));
        assert_eq!(status, 200);

        let (status, body) =
            roundtrip(addr, "GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE snoop_queue_depth gauge"), "{body}");
        assert!(body.contains("snoop_requests_total{endpoint=\"eval\",status=\"2xx\"} 1"), "{body}");
        assert!(body.contains("snoop_hist_bucket{name=\"serve.queue_wait_ms\",le=\"+Inf\"}"), "{body}");
        assert!(body.contains("snoop_hist_count{name=\"serve.service_ms.eval\"} 1"), "{body}");
        assert!(body.contains("snoop_workers 3"), "{body}");
        assert!(body.contains("snoop_queue_bound 17"), "{body}");

        let (status, body) =
            roundtrip(addr, "GET /metrics?format=xml HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 400);
        assert!(body.contains("unknown format"), "{body}");

        srv.stop();
    }

    #[test]
    fn access_log_captures_one_line_per_request() {
        let _serial = SERVER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir()
            .join(format!("snoop-serve-access-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("access.log");
        let mut srv = boot(ServeConfig {
            access_log: Some(log_path.clone()),
            ..ServeConfig::default()
        });
        let addr = srv.addr;

        let (status, _) = post_eval(addr, &scenarios_json(&[2]));
        assert_eq!(status, 200);
        let (status, _) = roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 404);
        srv.stop(); // joins the logger thread, so the log is complete

        let text = std::fs::read_to_string(&log_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"method\":\"POST\""), "{text}");
        assert!(lines[0].contains("\"path\":\"/eval\""), "{text}");
        assert!(lines[0].contains("\"status\":200"), "{text}");
        assert!(lines[0].contains("\"jobs\":1"), "{text}");
        assert!(lines[0].contains("\"queue_wait_ms\":"), "{text}");
        assert!(lines[0].contains("\"service_ms\":"), "{text}");
        assert!(lines[1].contains("\"path\":\"/nope\""), "{text}");
        assert!(lines[1].contains("\"status\":404"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn post_shutdown_stops_the_daemon_gracefully() {
        let _serial = SERVER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut srv = boot(ServeConfig::default());
        let addr = srv.addr;
        let (status, body) =
            roundtrip(addr, "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("shutting down"), "{body}");
        let summary = srv.stop();
        assert!(summary.requests >= 1);
        // The port is released: a fresh connection is refused or reset.
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
