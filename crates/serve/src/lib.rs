//! `snoop-serve` — a persistent HTTP evaluation daemon over the engine.
//!
//! The paper's MVA technique earns its keep when one calibrated model
//! answers thousands of what-if queries; a batch CLI throws the warm
//! state away between invocations. This crate is the long-running front
//! door: one process holding one warm [`Engine`] — content-addressed
//! cache plus the optional durable `snoop-store` tier — shared across
//! every client, so repeat queries are cache hits no matter who asks.
//!
//! The daemon is std-only, matching the workspace's zero-dependency
//! discipline: a hand-rolled minimal HTTP/1.1 layer ([`http`]) on a
//! [`std::net::TcpListener`], an acceptor thread feeding a **bounded**
//! submission queue (backpressure: a full queue answers `429` with
//! `Retry-After` instead of growing without bound), and a small pool of
//! worker threads serving:
//!
//! * `POST /eval` — a `snoop-scenario-v1` batch (the same schema as
//!   `snoop eval --scenarios`); results stream back as they complete,
//!   one JSON object per line over chunked transfer encoding;
//! * `GET /metrics` — the live `snoop-metrics-v2` probe snapshot
//!   (per-endpoint RED counters, queue-depth and queue-wait series,
//!   latency histograms, engine cache/store counters); add
//!   `?format=prometheus` for text exposition 0.0.4 ([`metrics`]);
//! * `GET /healthz` — liveness plus uptime, version, worker count,
//!   queue bound and cumulative requests served;
//! * `POST /shutdown` — the administrative equivalent of SIGTERM.
//!
//! With `--access-log FILE` every request also emits one NDJSON line
//! (method, path, status, bytes, queue wait, service time) from a
//! dedicated logger thread ([`access_log`]) that drops-and-counts on
//! overflow rather than ever stalling a worker.
//!
//! Shutdown (SIGTERM, ctrl-c or `POST /shutdown`) is graceful: the
//! acceptor stops accepting, queued and in-flight requests drain, the
//! workers join, and the store's write-through contract means nothing
//! needs replaying. Request handlers are panic-isolated: a handler
//! panic costs that connection a `500`, never the process.
//!
//! Determinism is preserved per request: each scenario is evaluated
//! through the same engine path as the batch CLI, and cached values are
//! bit-identical to freshly computed ones, so two clients racing on the
//! same scenario get byte-identical evaluations.
//!
//! [`Engine`]: snoop_mva::engine::Engine

// `deny`, not `forbid`: the one audited exception is `signal` (see
// below). Everything else in this crate is `unsafe`-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access_log;
pub mod http;
pub mod metrics;
pub mod server;
// Installing a SIGTERM/SIGINT handler requires one `signal(2)` FFI call;
// the handler body is a single atomic store (async-signal-safe). This is
// the workspace's second documented unsafe island, after
// `snoop-numeric::exec`.
#[allow(unsafe_code)]
mod signal;

pub use server::{ServeConfig, ServeError, ServeSummary, Server, ShutdownHandle};
