//! A deterministic event calendar for continuous-time discrete-event
//! simulation.
//!
//! Events at equal timestamps are delivered in insertion order (a strictly
//! increasing sequence number breaks ties), which keeps runs reproducible
//! for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: timestamp, tie-breaking sequence number, payload.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event calendar.
///
/// # Example
///
/// ```
/// use snoop_sim::event::Calendar;
///
/// let mut cal = Calendar::new();
/// cal.schedule(2.0, "late");
/// cal.schedule(1.0, "early");
/// assert_eq!(cal.next(), Some((1.0, "early")));
/// assert_eq!(cal.next(), Some((2.0, "late")));
/// assert_eq!(cal.next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Calendar<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time (events
    /// cannot be scheduled in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule in the past: {time} < {}",
            self.now
        );
        self.heap.push(Entry { time, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock.
    ///
    /// Named `next` on purpose (the calendar is iterator-like), but not an
    /// `Iterator` impl: popping mutates the clock and borrows rules make
    /// the explicit method clearer at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut c = Calendar::new();
        c.schedule(3.0, 3);
        c.schedule(1.0, 1);
        c.schedule(2.0, 2);
        assert_eq!(c.next().unwrap().1, 1);
        assert_eq!(c.next().unwrap().1, 2);
        assert_eq!(c.next().unwrap().1, 3);
    }

    #[test]
    fn equal_times_fifo() {
        let mut c = Calendar::new();
        for i in 0..10 {
            c.schedule(1.0, i);
        }
        for i in 0..10 {
            assert_eq!(c.next().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances() {
        let mut c = Calendar::new();
        c.schedule(5.0, ());
        assert_eq!(c.now(), 0.0);
        c.next();
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut c = Calendar::new();
        c.schedule(5.0, ());
        c.next();
        c.schedule(4.0, ());
    }

    #[test]
    fn len_and_empty() {
        let mut c: Calendar<()> = Calendar::new();
        assert!(c.is_empty());
        c.schedule(1.0, ());
        assert_eq!(c.len(), 1);
        c.next();
        assert!(c.is_empty());
        assert!(c.next().is_none());
    }
}
