//! Workload-parameter measurement from trace-driven simulation.
//!
//! The counters themselves now live in [`snoop_workload::measure`] — the
//! estimator is useful for *any* [`snoop_workload::trace::TraceSource`],
//! not just the simulator — and are re-exported here so existing
//! `snoop_sim::measure::ParameterCounters` imports keep working. The
//! simulator accumulates them during
//! [`crate::trace_mode::simulate_trace_source_measuring`]; feeding the
//! measured parameters back into the MVA model and comparing its
//! prediction against the very simulation they were measured from closes
//! the paper's loop end-to-end (see `tests/measured_params.rs` and the
//! `snoop calibrate` command).

pub use snoop_workload::measure::ParameterCounters;
