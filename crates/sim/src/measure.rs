//! Workload-parameter measurement from trace-driven simulation.
//!
//! The paper closes: "The model can be put to good use for evaluating the
//! protocols more thoroughly — all that is needed are workload measurement
//! studies to aid in the assignment of parameter values." This module is
//! that measurement study in miniature: it instruments the trace-driven
//! simulator and estimates every basic parameter of
//! [`snoop_workload::params::WorkloadParams`] from the observed behaviour —
//! stream mix, read fractions, per-stream hit rates, already-modified
//! probabilities, cache-supply and dirty-supplier probabilities, and
//! replacement write-back probabilities.
//!
//! Feeding the measured parameters back into the MVA model and comparing
//! its prediction against the very simulation they were measured from
//! closes the paper's loop end-to-end (see `tests/measured_params.rs`).

use snoop_workload::params::WorkloadParams;

/// Raw event counters, one accumulator per estimated parameter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParameterCounters {
    /// References per stream `[private, sro, sw]`.
    pub refs: [u64; 3],
    /// Reads per stream.
    pub reads: [u64; 3],
    /// Hits per stream.
    pub hits: [u64; 3],
    /// Write hits per stream.
    pub write_hits: [u64; 3],
    /// Write hits that found the block already modified, per stream.
    pub write_hits_modified: [u64; 3],
    /// Misses per stream.
    pub misses: [u64; 3],
    /// Misses that found a copy in another cache, per stream.
    pub misses_supplied: [u64; 3],
    /// Supplied misses whose supplier held the block dirty, per stream.
    pub misses_supplied_dirty: [u64; 3],
    /// Fills that evicted a dirty victim, per incoming stream.
    pub fills_dirty_victim: [u64; 3],
    /// Fills total, per incoming stream.
    pub fills: [u64; 3],
}

impl ParameterCounters {
    /// Total recorded references.
    pub fn total(&self) -> u64 {
        self.refs.iter().sum()
    }

    /// Converts the counters into workload parameters, keeping `tau` from
    /// the driving configuration (think time is an input, not a
    /// measurement).
    ///
    /// Empty counters fall back to neutral values (rates of 0, stream mix
    /// of the input) rather than dividing by zero.
    pub fn estimate(&self, tau: f64) -> WorkloadParams {
        let total = self.total().max(1) as f64;
        let rate = |num: u64, den: u64| if den > 0 { num as f64 / den as f64 } else { 0.0 };
        let private_misses = self.misses[0] + self.misses[1]; // sro victims share rep_p
        let private_dirty = self.fills_dirty_victim[0] + self.fills_dirty_victim[1];
        let private_fills = self.fills[0] + self.fills[1];
        let _ = private_misses;

        let mut p = WorkloadParams {
            tau,
            p_private: self.refs[0] as f64 / total,
            p_sro: self.refs[1] as f64 / total,
            p_sw: self.refs[2] as f64 / total,
            h_private: rate(self.hits[0], self.refs[0]),
            h_sro: rate(self.hits[1], self.refs[1]),
            h_sw: rate(self.hits[2], self.refs[2]),
            r_private: rate(self.reads[0], self.refs[0]),
            r_sw: rate(self.reads[2], self.refs[2]),
            amod_private: rate(self.write_hits_modified[0], self.write_hits[0]),
            amod_sw: rate(self.write_hits_modified[2], self.write_hits[2]),
            csupply_sro: rate(self.misses_supplied[1], self.misses[1]),
            csupply_sw: rate(self.misses_supplied[2], self.misses[2]),
            wb_csupply: rate(
                self.misses_supplied_dirty[2],
                self.misses_supplied[2],
            ),
            rep_p: rate(private_dirty, private_fills),
            rep_sw: rate(self.fills_dirty_victim[2], self.fills[2]),
        };
        // Normalize the stream mix exactly (guards the validate() sum).
        let sum = p.p_private + p.p_sro + p.p_sw;
        if sum > 0.0 {
            p.p_private /= sum;
            p.p_sro /= sum;
            p.p_sw /= sum;
        } else {
            p.p_private = 1.0;
            p.p_sro = 0.0;
            p.p_sw = 0.0;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counters_estimate_safely() {
        let c = ParameterCounters::default();
        let p = c.estimate(2.5);
        p.validate().unwrap();
        assert_eq!(p.p_private, 1.0);
        assert_eq!(p.h_sw, 0.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn simple_counters_produce_expected_rates() {
        let mut c = ParameterCounters::default();
        c.refs = [80, 10, 10];
        c.reads = [60, 10, 5];
        c.hits = [72, 9, 5];
        c.write_hits = [16, 0, 2];
        c.write_hits_modified = [8, 0, 1];
        c.misses = [8, 1, 5];
        c.misses_supplied = [0, 1, 4];
        c.misses_supplied_dirty = [0, 0, 2];
        c.fills = [8, 1, 5];
        c.fills_dirty_victim = [2, 0, 1];
        let p = c.estimate(2.5);
        p.validate().unwrap();
        assert!((p.p_private - 0.8).abs() < 1e-12);
        assert!((p.h_private - 0.9).abs() < 1e-12);
        assert!((p.r_private - 0.75).abs() < 1e-12);
        assert!((p.amod_private - 0.5).abs() < 1e-12);
        assert!((p.csupply_sw - 0.8).abs() < 1e-12);
        assert!((p.wb_csupply - 0.5).abs() < 1e-12);
        assert!((p.rep_sw - 0.2).abs() < 1e-12);
        // rep_p pools private and sro fills: 2 dirty of 9.
        assert!((p.rep_p - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn estimates_are_probabilities() {
        let mut c = ParameterCounters::default();
        c.refs = [1000, 0, 0];
        c.reads = [700, 0, 0];
        c.hits = [950, 0, 0];
        c.write_hits = [285, 0, 0];
        c.write_hits_modified = [200, 0, 0];
        c.misses = [50, 0, 0];
        c.fills = [50, 0, 0];
        c.fills_dirty_victim = [10, 0, 0];
        let p = c.estimate(1.0);
        p.validate().unwrap();
    }
}
