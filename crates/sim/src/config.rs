//! Simulation configuration.

use snoop_protocol::ModSet;
use snoop_workload::params::WorkloadParams;
use snoop_workload::timing::TimingModel;

use crate::SimError;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of processors.
    pub n: usize,
    /// Workload parameters (adjusted per modification by the caller or via
    /// [`SimConfig::for_protocol`]).
    pub params: WorkloadParams,
    /// Protocol modification set.
    pub mods: ModSet,
    /// Bus/memory timing.
    pub timing: TimingModel,
    /// RNG seed.
    pub seed: u64,
    /// Memory references per processor discarded as warm-up.
    pub warmup_references: usize,
    /// Memory references per processor measured after warm-up.
    pub measured_references: usize,
}

impl SimConfig {
    /// A configuration with the paper's Appendix-A adjustments applied for
    /// `mods`, defaulting to a measurement length that bounds speedup noise
    /// to roughly ±1%.
    pub fn for_protocol(n: usize, params: WorkloadParams, mods: ModSet) -> Self {
        SimConfig {
            n,
            params: snoop_workload::adjust::paper_adjusted(&params, mods),
            mods,
            timing: TimingModel::default(),
            seed: 0x5eed_cafe,
            warmup_references: 2_000,
            measured_references: 30_000,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero processors or an empty
    /// measurement phase, [`SimError::InsufficientRun`] for an empty
    /// warm-up phase, and propagates workload/timing validation.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n == 0 {
            return Err(SimError::InvalidConfig("need at least one processor".into()));
        }
        if self.measured_references == 0 {
            return Err(SimError::InvalidConfig("need a measurement phase".into()));
        }
        if self.warmup_references == 0 {
            // The measurement window opens at a warm-up completion event;
            // with zero warm-up references it can never open, so the run
            // would end without measures (and used to panic in `finish`).
            return Err(SimError::InsufficientRun {
                warmup: 0,
                measured: self.measured_references,
                progress: vec![0; self.n],
            });
        }
        self.params.validate()?;
        self.timing.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_workload::params::SharingLevel;

    #[test]
    fn for_protocol_applies_adjustments() {
        let c = SimConfig::for_protocol(
            4,
            WorkloadParams::appendix_a(SharingLevel::Five),
            ModSet::from_numbers(&[1]).unwrap(),
        );
        assert_eq!(c.params.rep_p, 0.3);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_processors() {
        let mut c =
            SimConfig::for_protocol(1, WorkloadParams::default(), ModSet::new());
        c.n = 0;
        assert!(matches!(c.validate(), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn validation_rejects_empty_measurement() {
        let mut c =
            SimConfig::for_protocol(1, WorkloadParams::default(), ModSet::new());
        c.measured_references = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_empty_warmup() {
        let mut c =
            SimConfig::for_protocol(2, WorkloadParams::default(), ModSet::new());
        c.warmup_references = 0;
        assert_eq!(
            c.validate(),
            Err(SimError::InsufficientRun { warmup: 0, measured: 30_000, progress: vec![0, 0] })
        );
    }
}
