//! Simulation output measures.

use std::fmt;

/// Steady-state estimates from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimMeasures {
    /// Number of processors.
    pub n: usize,
    /// Mean time between memory requests (harmonic mean across
    /// processors, consistent with the throughput-based speedup).
    pub r: f64,
    /// Speedup `Σ_p (τ + T_supply)/R_p`.
    pub speedup: f64,
    /// Fraction of the measurement window the bus was busy.
    pub bus_utilization: f64,
    /// Mean per-module busy fraction.
    pub memory_utilization: f64,
    /// Mean bus waiting time (grant − enqueue) over measured transactions.
    pub w_bus: f64,
    /// Total measured references across processors.
    pub references: usize,
}

impl SimMeasures {
    /// Processing power `speedup · τ/(τ + T_supply)` given the workload's
    /// think time.
    pub fn processing_power(&self, tau: f64, t_supply: f64) -> f64 {
        self.speedup * tau / (tau + t_supply)
    }
}

impl fmt::Display for SimMeasures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N = {:<4} R = {:.4}  speedup = {:.3}  U_bus = {:.3}  U_mem = {:.3}  w_bus = {:.3}  ({} refs)",
            self.n, self.r, self.speedup, self.bus_utilization, self.memory_utilization,
            self.w_bus, self.references
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processing_power_relation() {
        let m = SimMeasures {
            n: 9,
            r: 5.0,
            speedup: 6.3,
            bus_utilization: 0.8,
            memory_utilization: 0.1,
            w_bus: 1.2,
            references: 1000,
        };
        assert!((m.processing_power(2.5, 1.0) - 6.3 * 2.5 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let m = SimMeasures {
            n: 2,
            r: 4.0,
            speedup: 1.7,
            bus_utilization: 0.3,
            memory_utilization: 0.05,
            w_bus: 0.4,
            references: 100,
        };
        let s = m.to_string();
        assert!(s.contains("speedup"));
        assert!(s.contains("U_bus"));
    }
}
