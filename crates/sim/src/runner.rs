//! Output analysis: independent replications and single-run batch means.

use snoop_numeric::exec::{par_map, ExecOptions};
use snoop_numeric::stats::{confidence_interval, BatchMeans, ConfidenceInterval, RunningStats};

use crate::config::SimConfig;
use crate::probabilistic::simulate;
use crate::stats::SimMeasures;
use crate::SimError;

/// Aggregated results of several independent replications.
#[derive(Debug, Clone)]
pub struct ReplicatedMeasures {
    /// Per-replication measures.
    pub replications: Vec<SimMeasures>,
    /// Confidence interval on the speedup.
    pub speedup: ConfidenceInterval,
    /// Confidence interval on the bus utilization.
    pub bus_utilization: ConfidenceInterval,
    /// Confidence interval on the mean bus wait.
    pub w_bus: ConfidenceInterval,
}

impl ReplicatedMeasures {
    /// Point estimate of the speedup (mean over replications).
    pub fn mean_speedup(&self) -> f64 {
        self.speedup.mean
    }
}

/// Runs `replications` independent simulations (seeds derived from the
/// base configuration's seed) and aggregates them with Student-t intervals
/// at the given confidence level.
///
/// # Errors
///
/// Propagates simulation errors; requires at least two replications and
/// a confidence level inside `(0, 1)` for the intervals.
pub fn replicate(
    config: &SimConfig,
    replications: usize,
    level: f64,
) -> Result<ReplicatedMeasures, SimError> {
    replicate_exec(config, replications, level, &ExecOptions::SERIAL)
}

/// [`replicate`] with the independent replications run in parallel.
///
/// Each replication's seed is derived from the root seed and its index, so
/// a replication computes the same sample path no matter which worker runs
/// it: the aggregated measures are bit-identical to the serial path for
/// any thread count.
///
/// # Errors
///
/// See [`replicate`].
pub fn replicate_exec(
    config: &SimConfig,
    replications: usize,
    level: f64,
    exec: &ExecOptions,
) -> Result<ReplicatedMeasures, SimError> {
    if replications < 2 {
        return Err(SimError::InvalidConfig("need at least two replications".into()));
    }
    // Validate the level here rather than letting `confidence_interval`
    // fail after the replications have already been paid for (the old
    // code `expect`ed its way past that error and panicked).
    if !(level > 0.0 && level < 1.0) {
        return Err(SimError::InvalidConfig(format!(
            "confidence level must lie in (0, 1), got {level}"
        )));
    }
    let _probe_span = snoop_numeric::probe::span("sim_replications");
    snoop_numeric::probe::counter_add("sim.replications", replications as u64);
    // Derive every seed from the root seed and the replication index up
    // front; the runs are then fully independent work items.
    let configs: Vec<SimConfig> = (0..replications)
        .map(|i| {
            let mut c = *config;
            c.seed =
                config.seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i as u64 + 1));
            c
        })
        .collect();
    let results: Vec<SimMeasures> = par_map(&configs, exec, simulate)
        .into_iter()
        .collect::<Result<_, _>>()?;

    let collect = |f: fn(&SimMeasures) -> f64| -> RunningStats {
        results.iter().map(f).collect()
    };
    let ci = |stats: RunningStats| -> Result<ConfidenceInterval, SimError> {
        confidence_interval(&stats, level).map_err(|e| SimError::InvalidConfig(e.to_string()))
    };

    Ok(ReplicatedMeasures {
        speedup: ci(collect(|m| m.speedup))?,
        bus_utilization: ci(collect(|m| m.bus_utilization))?,
        w_bus: ci(collect(|m| m.w_bus))?,
        replications: results,
    })
}

/// Batch-means estimate from consecutive segments of one long run.
///
/// Cheaper than independent replications (one warm-up instead of `k`):
/// the measurement phase is split into `batches` consecutive segments, the
/// per-segment speedups are treated as approximately independent samples,
/// and a Student-t interval is formed over them. Implemented by running
/// `batches` back-to-back simulations that share a common warmed seed
/// stream, which is statistically equivalent for this regenerative-ish
/// workload and keeps the simulator core simple.
///
/// # Errors
///
/// Propagates simulation errors; needs at least two batches.
pub fn batch_means_speedup(
    config: &SimConfig,
    batches: usize,
    level: f64,
) -> Result<ConfidenceInterval, SimError> {
    if batches < 2 {
        return Err(SimError::InvalidConfig("need at least two batches".into()));
    }
    let per_batch = (config.measured_references / batches).max(1);
    let mut bm = BatchMeans::new(1);
    let mut c = *config;
    c.measured_references = per_batch;
    for i in 0..batches {
        // Continue the run: each batch starts warmed (short warm-up after
        // the first, which inherits the configured one).
        c.seed = config.seed.wrapping_add(i as u64 * 0x9e37_79b9);
        if i > 0 {
            c.warmup_references = (config.warmup_references / 4).max(100);
        }
        bm.push(simulate(&c)?.speedup);
    }
    bm.confidence_interval(level)
        .map_err(|e| SimError::InvalidConfig(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};

    fn quick_config(n: usize) -> SimConfig {
        let mut c = SimConfig::for_protocol(
            n,
            WorkloadParams::appendix_a(SharingLevel::Five),
            ModSet::new(),
        );
        c.warmup_references = 300;
        c.measured_references = 3_000;
        c
    }

    #[test]
    fn replications_produce_tight_interval() {
        let r = replicate(&quick_config(4), 5, 0.95).unwrap();
        assert_eq!(r.replications.len(), 5);
        // Speedup around the MVA's 3.12 with a small relative half-width.
        assert!(r.speedup.contains(r.mean_speedup()));
        assert!(
            r.speedup.relative_half_width() < 0.05,
            "half-width {}",
            r.speedup.relative_half_width()
        );
        assert!((r.mean_speedup() - 3.12).abs() < 0.25, "{}", r.mean_speedup());
    }

    #[test]
    fn needs_two_replications() {
        assert!(replicate(&quick_config(2), 1, 0.95).is_err());
    }

    #[test]
    fn invalid_level_is_an_error_not_a_panic() {
        // This used to reach the `.expect("... valid level")` inside the
        // aggregation step and abort the process.
        let err = replicate(&quick_config(2), 4, 1.5).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        let err = replicate(&quick_config(2), 4, 0.0).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn batch_means_brackets_the_replicated_estimate() {
        let config = quick_config(4);
        let replicated = replicate(&config, 4, 0.95).unwrap();
        let bm = batch_means_speedup(&config, 5, 0.95).unwrap();
        // The two estimators target the same quantity.
        assert!(
            (bm.mean - replicated.mean_speedup()).abs() / replicated.mean_speedup() < 0.05,
            "batch means {} vs replications {}",
            bm.mean,
            replicated.mean_speedup()
        );
        assert!(bm.half_width > 0.0);
    }

    #[test]
    fn batch_means_needs_two_batches() {
        assert!(batch_means_speedup(&quick_config(2), 1, 0.95).is_err());
    }

    #[test]
    fn parallel_replications_are_bit_identical_to_serial() {
        let config = quick_config(2);
        let serial = replicate_exec(&config, 4, 0.95, &ExecOptions::SERIAL).unwrap();
        for threads in [2, 8] {
            let parallel =
                replicate_exec(&config, 4, 0.95, &ExecOptions::with_threads(threads)).unwrap();
            let serial_speedups: Vec<u64> =
                serial.replications.iter().map(|m| m.speedup.to_bits()).collect();
            let parallel_speedups: Vec<u64> =
                parallel.replications.iter().map(|m| m.speedup.to_bits()).collect();
            assert_eq!(serial_speedups, parallel_speedups, "{threads} threads diverged");
            assert_eq!(serial.speedup.mean.to_bits(), parallel.speedup.mean.to_bits());
            assert_eq!(
                serial.speedup.half_width.to_bits(),
                parallel.speedup.half_width.to_bits()
            );
        }
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let r = replicate(&quick_config(2), 3, 0.95).unwrap();
        let speedups: Vec<f64> = r.replications.iter().map(|m| m.speedup).collect();
        assert!(speedups.windows(2).any(|w| w[0] != w[1]), "{speedups:?}");
    }
}
