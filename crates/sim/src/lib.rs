//! Discrete-event simulation of the shared-bus snooping multiprocessor —
//! the second detailed comparator (the role \[ArBa86\]'s simulator plays in
//! the paper's Section 4.4).
//!
//! Two modes are provided:
//!
//! * [`probabilistic`] — each processor alternates exponential think times
//!   with memory references drawn from the same workload parameters the
//!   MVA model consumes ([`snoop_workload::synth`]). The simulator resolves
//!   what the MVA approximates analytically: an exact FCFS bus queue,
//!   per-module memory occupancy, and per-cache snoop busy times. Agreement
//!   with the MVA solution is therefore a direct check of the paper's
//!   approximations (Eqs. 5–13).
//! * [`trace_mode`] — a full cache simulation: per-processor
//!   set-associative LRU caches execute the protocol state machines of
//!   [`snoop_protocol`] over synthetic address traces, with hit rates and
//!   bus traffic *emerging* from the trace rather than being parameters.
//!
//! Output analysis (warm-up removal, independent replications with
//! Student-t confidence intervals) lives in [`stats`] and [`runner`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod measure;
pub mod probabilistic;
pub mod runner;
pub mod stats;
pub mod trace_mode;

mod error;

pub use config::SimConfig;
pub use error::SimError;
pub use probabilistic::{simulate, simulate_with_profile, WaitProfile};
pub use stats::SimMeasures;
