//! The probabilistic-workload discrete-event simulator.
//!
//! Each processor cycles through: exponential think time (mean `τ`) →
//! memory reference (drawn by [`snoop_workload::synth::ReferenceGenerator`])
//! → response (local, broadcast, or remote read) → one `T_supply` cycle →
//! think again. The simulator resolves exactly the mechanisms the MVA model
//! approximates:
//!
//! * the **bus** is a real FCFS queue (the MVA's Eq. 5 waiting time is an
//!   approximation of this queue);
//! * **memory modules** are real resources: a broadcast holds the bus until
//!   its target module is free, then occupies the module for `d_mem`
//!   cycles; block write-backs occupy a module in the background (matching
//!   the Eq. 12 accounting, which charges each memory-updating operation
//!   to one of the `m` interleaved modules);
//! * **snoop (cache) interference** is resolved per transaction: each other
//!   cache holds a referenced shared block with probability 0.5 (the same
//!   constant the Appendix-B equations use), a supplier is picked among the
//!   holders, and the affected caches are busied briefly (invalidation) or
//!   for the whole transaction (supply/update), delaying their processors'
//!   local requests.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use snoop_protocol::Modification;
use snoop_workload::synth::{ReferenceEvent, ReferenceGenerator, Stream};

use crate::config::SimConfig;
use crate::event::Calendar;
use crate::stats::SimMeasures;
use crate::SimError;

/// Probability that a given other cache holds a copy of a referenced
/// shared block — kept equal to the Appendix-B constant so the simulator
/// and the analytic interference submodel describe the same system.
const HOLDS_COPY: f64 = 0.5;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The processor's think time elapsed; it issues its next reference.
    Issue(usize),
    /// The bus transaction at the queue head completes.
    BusRelease,
}

#[derive(Debug, Clone, Copy)]
enum BusJob {
    /// A broadcast (`write-word`/`invalidate`).
    Broadcast {
        proc: usize,
        enqueued: f64,
        /// Whether the broadcast targets a shared-writable block (and so
        /// concerns other caches).
        shared: bool,
    },
    /// A remote `read`/`read-mod` with its resolved context.
    RemoteRead { proc: usize, enqueued: f64, reference: ReferenceEvent },
}

impl BusJob {
    fn proc(&self) -> usize {
        match *self {
            BusJob::Broadcast { proc, .. } | BusJob::RemoteRead { proc, .. } => proc,
        }
    }

    fn enqueued(&self) -> f64 {
        match *self {
            BusJob::Broadcast { enqueued, .. } | BusJob::RemoteRead { enqueued, .. } => enqueued,
        }
    }
}

struct Machine {
    config: SimConfig,
    calendar: Calendar<Event>,
    generator: ReferenceGenerator<SmallRng>,
    rng: SmallRng,
    bus_queue: VecDeque<BusJob>,
    bus_busy: bool,
    /// Completion time of the current bus transaction's full window
    /// (used for snoop busy times).
    module_busy: Vec<f64>,
    cache_busy: Vec<f64>,
    /// Per-processor completed references.
    completed: Vec<usize>,
    /// Per-processor time of warm-up completion / measurement completion.
    warm_at: Vec<Option<f64>>,
    done_at: Vec<Option<f64>>,
    /// Global measurement window start (all processors warm).
    meas_start: Option<f64>,
    /// Bus busy time accumulated after `meas_start`.
    bus_busy_time: f64,
    module_busy_time: f64,
    /// Bus waiting times (grant − enqueue) within measurement.
    bus_waits: Vec<f64>,
    /// Issue timestamp of each processor's in-flight reference.
    issued_at: Vec<f64>,
    /// Response times (completion − issue) within measurement.
    response_times: Vec<f64>,
    mod1: bool,
    mod2: bool,
    mod3: bool,
    mod4: bool,
}

impl Machine {
    fn new(config: SimConfig) -> Self {
        let n = config.n;
        let mods = config.mods;
        Machine {
            generator: ReferenceGenerator::new(
                config.params,
                SmallRng::seed_from_u64(config.seed),
            ),
            rng: SmallRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1)),
            config,
            calendar: Calendar::new(),
            bus_queue: VecDeque::new(),
            bus_busy: false,
            module_busy: vec![0.0; 4],
            cache_busy: vec![0.0; n],
            completed: vec![0; n],
            warm_at: vec![None; n],
            done_at: vec![None; n],
            meas_start: None,
            bus_busy_time: 0.0,
            module_busy_time: 0.0,
            bus_waits: Vec::new(),
            issued_at: vec![0.0; n],
            response_times: Vec::new(),
            mod1: mods.contains(Modification::ExclusiveLoad),
            mod2: mods.contains(Modification::CacheSupply),
            mod3: mods.contains(Modification::InvalidateOnWrite),
            mod4: mods.contains(Modification::DistributedWrite),
        }
    }

    fn run(&mut self) -> Result<SimMeasures, SimError> {
        for p in 0..self.config.n {
            let think = self.generator.think_time();
            self.calendar.schedule(think, Event::Issue(p));
        }

        let mut events: u64 = 0;
        while let Some((now, event)) = self.calendar.next() {
            events += 1;
            match event {
                Event::Issue(p) => self.issue(now, p),
                Event::BusRelease => self.release_bus(now),
            }
            if self.done_at.iter().all(Option::is_some) {
                break;
            }
        }
        // Observational only; scanning the wait list to compute metrics
        // is gated on `enabled()` so disabled runs pay a single atomic
        // load.
        if snoop_numeric::probe::enabled() {
            snoop_numeric::probe::counter_add("sim.events", events);
            snoop_numeric::probe::counter_add(
                "sim.bus_transactions",
                self.bus_waits.len() as u64,
            );
            let queued =
                self.bus_waits.iter().filter(|&&w| w >= 1e-9).count() as u64;
            snoop_numeric::probe::counter_add("sim.bus_queue_waits", queued);
            let completed: usize = self.completed.iter().sum();
            snoop_numeric::probe::counter_add("sim.references", completed as u64);
        }
        self.finish()
    }

    /// The processor issues a reference at `now`.
    fn issue(&mut self, now: f64, p: usize) {
        self.issued_at[p] = now;
        let reference = self.generator.next_reference();
        let needs_bus = self.classify(&reference);
        match needs_bus {
            None => {
                // Local: wait for the cache to finish servicing snooped
                // traffic, then one supply cycle.
                let done = now.max(self.cache_busy[p]) + self.config.timing.t_supply;
                self.complete(done, p);
            }
            Some(job_kind) => {
                let job = match job_kind {
                    JobKind::Broadcast { shared } => {
                        BusJob::Broadcast { proc: p, enqueued: now, shared }
                    }
                    JobKind::RemoteRead => {
                        BusJob::RemoteRead { proc: p, enqueued: now, reference }
                    }
                };
                self.bus_queue.push_back(job);
                if !self.bus_busy {
                    self.dispatch(now);
                }
            }
        }
    }

    /// Routes a reference: `None` = local, otherwise the bus job kind.
    ///
    /// The routing mirrors `ModelInputs::derive` exactly — see that
    /// function for the per-modification rationale.
    fn classify(&mut self, r: &ReferenceEvent) -> Option<JobKind> {
        if !r.hits {
            return Some(JobKind::RemoteRead);
        }
        if !r.is_write {
            return None;
        }
        match r.stream {
            Stream::Private => {
                if r.already_modified || self.mod1 {
                    None
                } else {
                    // Write-Once write-through of a private block: no other
                    // cache holds it, so the broadcast snoops nobody.
                    Some(JobKind::Broadcast { shared: false })
                }
            }
            Stream::SharedReadOnly => None, // sro is never written
            Stream::SharedWritable => {
                if self.mod4 {
                    Some(JobKind::Broadcast { shared: true })
                } else if r.already_modified {
                    None
                } else {
                    Some(JobKind::Broadcast { shared: true })
                }
            }
        }
    }

    /// Grants the bus to the queue head.
    fn dispatch(&mut self, now: f64) {
        let Some(job) = self.bus_queue.pop_front() else {
            return;
        };
        self.bus_busy = true;
        if self.meas_start.is_some() {
            self.bus_waits.push(now - job.enqueued());
        }
        let timing = self.config.timing;

        let release = match job {
            BusJob::Broadcast { shared, .. } => {
                let release = if self.mod3 {
                    // Invalidate / memory-skipping broadcast: one bus cycle.
                    now + timing.t_write
                } else {
                    // Write-through: hold the bus until the target module
                    // accepts the word, then occupy the module.
                    let m = self.rng.random_range(0..self.module_busy.len());
                    let module_free = now.max(self.module_busy[m]);
                    self.occupy_module(m, module_free);
                    module_free + timing.t_write
                };
                if shared {
                    self.snoop_broadcast(now, release, job.proc());
                }
                release
            }
            BusJob::RemoteRead { reference, proc, .. } => {
                let mut duration = if reference.supplier_exists {
                    timing.cache_read_cycles()
                } else {
                    timing.memory_read_cycles()
                };
                if reference.supplier_dirty && !self.mod2 {
                    // Write-Once: the dirty snooper updates memory first.
                    duration += timing.writeback_cycles();
                    let m = self.rng.random_range(0..self.module_busy.len());
                    self.occupy_module(m, now + duration);
                }
                if reference.victim_dirty {
                    duration += timing.writeback_cycles();
                    let m = self.rng.random_range(0..self.module_busy.len());
                    self.occupy_module(m, now + duration);
                }
                // A modification-4 write miss that found other copies is
                // followed by the broadcast of the written word.
                if self.mod4 && reference.is_write && reference.supplier_exists {
                    duration += timing.t_write;
                }
                let release = now + duration;
                self.snoop_remote_read(now, release, proc, &reference);
                release
            }
        };

        if self.meas_start.is_some() {
            self.bus_busy_time += release - now;
        }
        self.calendar.schedule(release, Event::BusRelease);
        // Stash the completing processor by re-reading the job at release
        // time: encode by scheduling the completion directly.
        let done = release + timing.t_supply;
        self.complete_later(done, job.proc());
    }

    /// Background memory-module occupancy starting at `from`.
    fn occupy_module(&mut self, m: usize, from: f64) {
        let start = from.max(self.module_busy[m]);
        let end = start + self.config.timing.memory_latency;
        if self.meas_start.is_some() {
            self.module_busy_time += end - start;
        }
        self.module_busy[m] = end;
    }

    /// Snoop effects of a shared broadcast on the other caches.
    fn snoop_broadcast(&mut self, start: f64, release: f64, source: usize) {
        for q in 0..self.config.n {
            if q == source {
                continue;
            }
            if self.rng.random_bool(HOLDS_COPY) {
                let until = if self.mod4 {
                    release // update: busy for the whole transaction
                } else {
                    start + 1.0 // invalidation: brief
                };
                self.cache_busy[q] = self.cache_busy[q].max(until);
            }
        }
    }

    /// Snoop effects of a remote read on the other caches.
    fn snoop_remote_read(
        &mut self,
        start: f64,
        release: f64,
        source: usize,
        reference: &ReferenceEvent,
    ) {
        if reference.stream == Stream::Private {
            return; // no other cache holds private blocks
        }
        let mut supplier: Option<usize> = None;
        if reference.supplier_exists && self.config.n > 1 {
            // Pick the supplier uniformly among the other caches ("a block
            // supplied by a cache is equally likely to be supplied by any
            // of the other caches").
            let mut pick = self.rng.random_range(0..self.config.n - 1);
            if pick >= source {
                pick += 1;
            }
            supplier = Some(pick);
        }
        for q in 0..self.config.n {
            if q == source {
                continue;
            }
            if Some(q) == supplier {
                self.cache_busy[q] = self.cache_busy[q].max(release);
            } else if self.rng.random_bool(HOLDS_COPY) {
                self.cache_busy[q] = self.cache_busy[q].max(start + 1.0);
            }
        }
    }

    fn release_bus(&mut self, now: f64) {
        self.bus_busy = false;
        if !self.bus_queue.is_empty() {
            self.dispatch(now);
        }
    }

    /// Schedules the completion bookkeeping for processor `p` at `done`.
    fn complete_later(&mut self, done: f64, p: usize) {
        // Completions re-enter the calendar as the next Issue; bookkeeping
        // happens inline here because `done` is already final.
        self.complete(done, p);
    }

    /// Records a completed reference and schedules the next think/issue.
    fn complete(&mut self, done: f64, p: usize) {
        if self.meas_start.is_some() {
            self.response_times.push(done - self.issued_at[p]);
        }
        self.completed[p] += 1;
        if self.completed[p] == self.config.warmup_references {
            self.warm_at[p] = Some(done);
            if self.warm_at.iter().all(Option::is_some) {
                self.meas_start = Some(done);
            }
        }
        if self.completed[p]
            == self.config.warmup_references + self.config.measured_references
            && self.done_at[p].is_none()
        {
            self.done_at[p] = Some(done);
        }
        let think = self.generator.think_time();
        self.calendar.schedule(done + think, Event::Issue(p));
    }

    fn finish(&self) -> Result<SimMeasures, SimError> {
        let timing = self.config.timing;
        let cycle = self.config.params.tau + timing.t_supply;
        // Per-processor R over its own measurement window. A processor
        // with no warm-up or done timestamp means the run ended before
        // its measurement window closed — report typed progress instead
        // of panicking (this used to be `expect("warmed")`).
        let mut rs = Vec::with_capacity(self.config.n);
        let mut ends = Vec::with_capacity(self.config.n);
        for p in 0..self.config.n {
            let (Some(start), Some(end)) = (self.warm_at[p], self.done_at[p]) else {
                return Err(SimError::InsufficientRun {
                    warmup: self.config.warmup_references,
                    measured: self.config.measured_references,
                    progress: self.completed.clone(),
                });
            };
            rs.push((end - start) / self.config.measured_references as f64);
            ends.push(end);
        }
        let speedup: f64 = rs.iter().map(|r| cycle / r).sum();
        let r_mean = self.config.n as f64 / rs.iter().map(|r| 1.0 / r).sum::<f64>();

        let t0 = self.meas_start.unwrap_or(0.0);
        let t1 = ends.iter().copied().fold(0.0_f64, f64::max);
        let window = (t1 - t0).max(1e-9);
        let mean_w_bus = if self.bus_waits.is_empty() {
            0.0
        } else {
            self.bus_waits.iter().sum::<f64>() / self.bus_waits.len() as f64
        };

        Ok(SimMeasures {
            n: self.config.n,
            r: r_mean,
            speedup,
            bus_utilization: (self.bus_busy_time / window).min(1.0),
            memory_utilization: (self.module_busy_time
                / (window * self.module_busy.len() as f64))
                .min(1.0),
            w_bus: mean_w_bus,
            references: self.config.n * self.config.measured_references,
        })
    }
}

#[derive(Debug, Clone, Copy)]
enum JobKind {
    Broadcast { shared: bool },
    RemoteRead,
}

/// Runs one simulation.
///
/// # Errors
///
/// Propagates configuration validation failures, and returns
/// [`SimError::InsufficientRun`] (with per-processor progress) when the
/// run ends before every processor completes its warm-up and
/// measurement windows.
pub fn simulate(config: &SimConfig) -> Result<SimMeasures, SimError> {
    config.validate()?;
    let _probe_span = snoop_numeric::probe::span("sim_run");
    Machine::new(*config).run()
}

/// Distribution of the measured bus waiting times (the quantity the MVA's
/// Eq. 5 summarizes by its mean).
#[derive(Debug, Clone)]
pub struct WaitProfile {
    /// The full histogram (40 bins over the observed range).
    pub histogram: snoop_numeric::histogram::Histogram,
    /// Median wait.
    pub p50: f64,
    /// 95th-percentile wait.
    pub p95: f64,
    /// Largest observed wait.
    pub max: f64,
    /// Fraction of transactions that waited not at all (< 1e−9 cycles).
    pub zero_wait_fraction: f64,
    /// Distribution of full response times (completion − issue) per
    /// reference — the per-request view of the paper's `R`.
    pub response_times: snoop_numeric::histogram::Histogram,
}

impl WaitProfile {
    /// Samples that fell outside the bin ranges of either histogram
    /// (underflow + overflow). Nonzero means the quantiles and means
    /// above exclude data and the profile should say so.
    pub fn out_of_range(&self) -> u64 {
        self.histogram.underflow()
            + self.histogram.overflow()
            + self.response_times.underflow()
            + self.response_times.overflow()
    }
}

/// Runs one simulation and also returns the bus-wait and response-time
/// distributions.
///
/// # Errors
///
/// Propagates configuration validation failures and
/// [`SimError::InsufficientRun`]; a run whose measurement window
/// contains no bus transactions yields an all-zero profile.
pub fn simulate_with_profile(config: &SimConfig) -> Result<(SimMeasures, WaitProfile), SimError> {
    config.validate()?;
    let _probe_span = snoop_numeric::probe::span("sim_run");
    let mut machine = Machine::new(*config);
    let measures = machine.run()?;
    let build = |samples: &[f64]| {
        let max = samples.iter().copied().fold(0.0_f64, f64::max);
        let mut histogram =
            snoop_numeric::histogram::Histogram::new(0.0, (max * 1.01).max(1.0), 40)
                .expect("valid range");
        histogram.extend(samples.iter().copied());
        histogram
    };
    let histogram = build(&machine.bus_waits);
    let response_times = build(&machine.response_times);
    let quantile = |q: f64| histogram.quantile(q).unwrap_or(0.0);
    let waits = &machine.bus_waits;
    let max = waits.iter().copied().fold(0.0_f64, f64::max);
    let zero = waits.iter().filter(|&&w| w < 1e-9).count();
    let profile = WaitProfile {
        p50: quantile(0.5),
        p95: quantile(0.95),
        max,
        zero_wait_fraction: if waits.is_empty() { 0.0 } else { zero as f64 / waits.len() as f64 },
        histogram,
        response_times,
    };
    Ok((measures, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoop_protocol::ModSet;
    use snoop_workload::params::{SharingLevel, WorkloadParams};

    fn quick_config(n: usize, level: SharingLevel, mods: &[u8]) -> SimConfig {
        let mut c = SimConfig::for_protocol(
            n,
            WorkloadParams::appendix_a(level),
            ModSet::from_numbers(mods).unwrap(),
        );
        c.warmup_references = 500;
        c.measured_references = 8_000;
        c
    }

    #[test]
    fn one_reference_run_returns_insufficient_run_error() {
        // warmup = 0, measured = 1: the measurement window can never
        // open (it opens at a warm-up completion event), so the old code
        // panicked in `finish()` via `expect("warmed")`. Now it must be
        // a typed error carrying per-processor progress.
        let mut config = quick_config(2, SharingLevel::Five, &[]);
        config.warmup_references = 0;
        config.measured_references = 1;
        let err = simulate(&config).unwrap_err();
        assert_eq!(
            err,
            SimError::InsufficientRun { warmup: 0, measured: 1, progress: vec![0, 0] }
        );
        assert!(simulate_with_profile(&config).is_err());
    }

    #[test]
    fn single_processor_matches_mva_closely() {
        // With one processor there is no queueing at all, so simulator and
        // MVA should agree to sampling noise.
        let m = simulate(&quick_config(1, SharingLevel::Five, &[])).unwrap();
        assert!((m.speedup - 0.855).abs() < 0.02, "speedup = {}", m.speedup);
        assert!(m.w_bus < 1e-9);
    }

    #[test]
    fn speedup_grows_with_processors() {
        let s1 = simulate(&quick_config(1, SharingLevel::Five, &[])).unwrap().speedup;
        let s4 = simulate(&quick_config(4, SharingLevel::Five, &[])).unwrap().speedup;
        let s10 = simulate(&quick_config(10, SharingLevel::Five, &[])).unwrap().speedup;
        assert!(s4 > 2.5 * s1, "{s1} {s4}");
        assert!(s10 > s4, "{s4} {s10}");
    }

    #[test]
    fn bus_saturates_at_scale() {
        let m = simulate(&quick_config(30, SharingLevel::Five, &[])).unwrap();
        assert!(m.bus_utilization > 0.9, "U_bus = {}", m.bus_utilization);
    }

    #[test]
    fn mod1_beats_write_once() {
        let wo = simulate(&quick_config(10, SharingLevel::Five, &[])).unwrap();
        let m1 = simulate(&quick_config(10, SharingLevel::Five, &[1])).unwrap();
        assert!(m1.speedup > wo.speedup, "{} vs {}", m1.speedup, wo.speedup);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = simulate(&quick_config(4, SharingLevel::Twenty, &[])).unwrap();
        let b = simulate(&quick_config(4, SharingLevel::Twenty, &[])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate(&quick_config(4, SharingLevel::Twenty, &[])).unwrap();
        let mut c = quick_config(4, SharingLevel::Twenty, &[]);
        c.seed = 12345;
        let b = simulate(&c).unwrap();
        assert_ne!(a, b);
        // ...but only slightly.
        assert!((a.speedup - b.speedup).abs() / a.speedup < 0.05);
    }

    #[test]
    fn utilizations_are_probabilities() {
        for n in [1, 4, 16] {
            let m = simulate(&quick_config(n, SharingLevel::Twenty, &[])).unwrap();
            assert!((0.0..=1.0).contains(&m.bus_utilization));
            assert!((0.0..=1.0).contains(&m.memory_utilization));
            assert!(m.speedup <= n as f64 + 1e-9);
        }
    }

    #[test]
    fn wait_profile_is_consistent_with_measures() {
        let (m, profile) = simulate_with_profile(&quick_config(8, SharingLevel::Five, &[]))
            .unwrap();
        // The histogram's mean is the same data as m.w_bus.
        assert!((profile.histogram.mean() - m.w_bus).abs() < 1e-9);
        assert!(profile.p50 <= profile.p95);
        assert!(profile.p95 <= profile.max + 1e-9);
        assert!(profile.zero_wait_fraction > 0.0 && profile.zero_wait_fraction < 1.0);
    }

    #[test]
    fn response_time_distribution_matches_r() {
        // Mean response time over the distribution is R − τ (R counts the
        // think time, the per-request response does not).
        let (m, profile) = simulate_with_profile(&quick_config(6, SharingLevel::Five, &[]))
            .unwrap();
        let mean_response = profile.response_times.mean();
        let expected = m.r - 2.5;
        assert!(
            (mean_response - expected).abs() / expected < 0.02,
            "mean response {mean_response} vs R − τ = {expected}"
        );
        // Local hits dominate: the median response is the 1-cycle supply.
        let p50 = profile.response_times.quantile(0.5).unwrap();
        assert!(p50 < 2.0, "p50 = {p50}");
        // The tail is bus-bound and much longer.
        let p99 = profile.response_times.quantile(0.99).unwrap();
        assert!(p99 > 5.0, "p99 = {p99}");
    }

    #[test]
    fn single_processor_profile_is_all_zero_waits() {
        let (_, profile) =
            simulate_with_profile(&quick_config(1, SharingLevel::Five, &[])).unwrap();
        assert_eq!(profile.zero_wait_fraction, 1.0);
        assert_eq!(profile.max, 0.0);
    }

    #[test]
    fn mod3_reduces_memory_utilization() {
        let wo = simulate(&quick_config(10, SharingLevel::Twenty, &[])).unwrap();
        let m3 = simulate(&quick_config(10, SharingLevel::Twenty, &[3])).unwrap();
        assert!(
            m3.memory_utilization < wo.memory_utilization,
            "{} vs {}",
            m3.memory_utilization,
            wo.memory_utilization
        );
    }
}
