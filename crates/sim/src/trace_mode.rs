//! Trace-driven simulation: real caches, real protocol transitions.
//!
//! Where [`crate::probabilistic`] draws hit/miss outcomes from the workload
//! parameters (like the analytic models), this mode simulates actual
//! set-associative LRU caches executing the [`snoop_protocol`] state
//! machines over an address trace — the \[ArBa86\]/\[KEWP85\] style of
//! evaluation the paper compares against in Section 4.4. Hit rates, shared
//! lines, cache supply and write-backs all *emerge* from the block states
//! instead of being parameters, so this mode cross-checks the workload
//! model itself, not just the queueing approximations.
//!
//! The trace comes from any [`TraceSource`]: the synthetic
//! [`TraceGenerator`] (the original mode, driven by
//! [`simulate_trace_source`] with [`TraceSimConfig::generator`]) or the
//! file-backed readers of [`snoop_workload::ingest`], which replay real
//! address traces through the same caches and state machines with bounded
//! memory.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use snoop_protocol::{BusOp, CacheState, MissContext, ModSet, Protocol};
use snoop_workload::params::WorkloadParams;
use snoop_workload::synth::Stream;
use snoop_workload::timing::TimingModel;
use snoop_workload::trace::{TraceConfig, TraceGenerator, TraceRecord, TraceSource};

use crate::event::Calendar;
use crate::measure::ParameterCounters;
use crate::SimError;

/// Policy for distributed-write (modification 4) broadcasts.
///
/// The RWB protocol "includes the capability to switch between
/// invalidation and broadcast write operations" (paper Section 2.2):
/// updating copies nobody reads again is wasted bus bandwidth, so an
/// adaptive policy falls back to invalidation for blocks whose broadcasts
/// keep finding no other holders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Always broadcast (plain modification 4, Dragon-style).
    AlwaysUpdate,
    /// Per-block saturating counter of consecutive *useless* broadcasts
    /// (no other cache held a copy); at the limit, switch that block to
    /// invalidation until it becomes shared again.
    Adaptive {
        /// Useless broadcasts tolerated before switching (RWB used small
        /// values; 2–4 are typical).
        useless_limit: u8,
    },
}

/// Configuration of a trace-driven run.
#[derive(Debug, Clone, Copy)]
pub struct TraceSimConfig {
    /// Number of processors.
    pub n: usize,
    /// Protocol modification set.
    pub mods: ModSet,
    /// Broadcast policy (only meaningful with modification 4).
    pub update_policy: UpdatePolicy,
    /// Bus/memory timing.
    pub timing: TimingModel,
    /// Workload mix driving the trace generator (`tau` supplies the think
    /// time; the hit-rate parameters shape the trace's locality).
    pub params: WorkloadParams,
    /// Address-space shape.
    pub trace: TraceConfig,
    /// Cache sets per processor.
    pub sets: usize,
    /// Cache associativity (ways per set).
    pub ways: usize,
    /// RNG seed.
    pub seed: u64,
    /// References per processor discarded as warm-up.
    pub warmup_references: usize,
    /// References per processor measured.
    pub measured_references: usize,
}

impl TraceSimConfig {
    /// A small default configuration for `n` processors.
    pub fn new(n: usize, mods: ModSet) -> Self {
        TraceSimConfig {
            n,
            mods,
            update_policy: UpdatePolicy::AlwaysUpdate,
            timing: TimingModel::default(),
            params: WorkloadParams::default(),
            trace: TraceConfig { processors: n, ..TraceConfig::default() },
            sets: 256,
            ways: 2,
            seed: 0xcab1e,
            warmup_references: 5_000,
            measured_references: 20_000,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.trace.processors != self.n {
            return Err(SimError::InvalidConfig(
                "trace processor count must match n".into(),
            ));
        }
        self.params.validate()?;
        self.drive_config().validate()
    }

    /// The [`TraceSource`]-based driving configuration this legacy
    /// configuration describes (`tau` is taken from the workload
    /// parameters, everything else carries over).
    pub fn drive_config(&self) -> TraceDriveConfig {
        TraceDriveConfig {
            n: self.n,
            mods: self.mods,
            update_policy: self.update_policy,
            timing: self.timing,
            tau: self.params.tau,
            sets: self.sets,
            ways: self.ways,
            seed: self.seed,
            warmup_references: self.warmup_references,
            measured_references: self.measured_references,
        }
    }

    /// The synthetic [`TraceGenerator`] this legacy configuration
    /// describes, seeded as the old entry points seeded it — so
    /// `simulate_trace_source(&c.drive_config(), c.generator())` is
    /// bit-identical to the deprecated `simulate_trace(&c)`.
    ///
    /// # Errors
    ///
    /// Propagates workload-parameter validation failures.
    pub fn generator(&self) -> Result<TraceGenerator<SmallRng>, SimError> {
        self.params.validate()?;
        if self.trace.processors == 0 {
            return Err(SimError::InvalidConfig("need at least one processor".into()));
        }
        Ok(TraceGenerator::new(self.params, self.trace, SmallRng::seed_from_u64(self.seed)))
    }
}

/// Configuration of a [`TraceSource`]-driven simulation run.
///
/// Unlike the legacy [`TraceSimConfig`] this says nothing about where
/// references come from — address-space shape and reference mix live in
/// the source; only machine structure (caches, timing, protocol) and run
/// control (think time, warm-up/measurement windows) remain.
#[derive(Debug, Clone, Copy)]
pub struct TraceDriveConfig {
    /// Number of processors (must match the source).
    pub n: usize,
    /// Protocol modification set.
    pub mods: ModSet,
    /// Broadcast policy (only meaningful with modification 4).
    pub update_policy: UpdatePolicy,
    /// Bus/memory timing.
    pub timing: TimingModel,
    /// Mean think time between references (cycles, exponentially
    /// distributed). File-backed sources measure one — see
    /// [`TraceSource::measured_tau`].
    pub tau: f64,
    /// Cache sets per processor.
    pub sets: usize,
    /// Cache associativity (ways per set).
    pub ways: usize,
    /// Seed of the think-time RNG.
    pub seed: u64,
    /// References per processor discarded as warm-up.
    pub warmup_references: usize,
    /// References per processor measured.
    pub measured_references: usize,
}

impl TraceDriveConfig {
    /// A small default configuration for `n` processors.
    pub fn new(n: usize, mods: ModSet) -> Self {
        TraceSimConfig::new(n, mods).drive_config()
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.n == 0 {
            return Err(SimError::InvalidConfig("need at least one processor".into()));
        }
        if self.sets == 0 || self.ways == 0 {
            return Err(SimError::InvalidConfig("cache needs sets and ways".into()));
        }
        if self.measured_references == 0 {
            return Err(SimError::InvalidConfig("need a measurement phase".into()));
        }
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "think time tau must be positive and finite, got {}",
                self.tau
            )));
        }
        self.timing.validate()?;
        Ok(())
    }
}

/// Results of a trace-driven run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSimMeasures {
    /// Number of processors.
    pub n: usize,
    /// Mean time between references.
    pub r: f64,
    /// Speedup `Σ_p (τ + T_supply)/R_p`.
    pub speedup: f64,
    /// Bus utilization over the measurement window.
    pub bus_utilization: f64,
    /// Emergent hit rate over measured references.
    pub hit_rate: f64,
    /// Emergent fraction of misses supplied by another cache.
    pub cache_supply_rate: f64,
    /// Bus transactions per reference.
    pub bus_ops_per_reference: f64,
    /// Emergent hit rate of the private stream.
    pub hit_rate_private: f64,
    /// Emergent hit rate of the shared read-only stream.
    pub hit_rate_sro: f64,
    /// Emergent hit rate of the shared-writable stream.
    pub hit_rate_sw: f64,
    /// Snoop-induced invalidations per measured reference.
    pub invalidations_per_reference: f64,
}

/// One cache line.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    state: CacheState,
    /// LRU stamp (higher = more recent).
    lru: u64,
}

/// A set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
struct Cache {
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    tick: u64,
}

impl Cache {
    fn new(sets: usize, ways: usize) -> Self {
        Cache { sets, ways, lines: vec![Line::default(); sets * ways], tick: 0 }
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let set = (block % self.sets as u64) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// State of `block` in this cache (Invalid if absent).
    fn state(&self, block: u64) -> CacheState {
        self.lines[self.set_range(block)]
            .iter()
            .find(|l| l.tag == block && l.state.is_valid())
            .map_or(CacheState::Invalid, |l| l.state)
    }

    /// Updates the state of a resident block (touches LRU).
    fn set_state(&mut self, block: u64, state: CacheState) {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(block);
        if let Some(l) =
            self.lines[range].iter_mut().find(|l| l.tag == block && l.state.is_valid())
        {
            if state.is_valid() {
                l.state = state;
                l.lru = tick;
            } else {
                l.state = CacheState::Invalid;
            }
        }
    }

    /// Installs `block` with `state`, evicting LRU; returns the evicted
    /// block if it was valid and dirty (needs a write-back).
    fn fill(&mut self, block: u64, state: CacheState) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(block);
        // Re-use the block's own line or an invalid line if present.
        let lines = &mut self.lines[range];
        let victim = if let Some(i) = lines
            .iter()
            .position(|l| (l.tag == block && l.state.is_valid()) || !l.state.is_valid())
        {
            i
        } else {
            lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("ways > 0")
        };
        let evicted = lines[victim];
        lines[victim] = Line { tag: block, state, lru: tick };
        if evicted.state.is_valid() && evicted.state.is_dirty() && evicted.tag != block {
            Some(evicted.tag)
        } else {
            None
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Issue(usize),
    BusRelease,
}

#[derive(Debug, Clone, Copy)]
struct BusJob {
    proc: usize,
    op: BusOp,
    block: u64,
    is_write: bool,
    stream: Stream,
}

struct TraceMachine<S> {
    config: TraceDriveConfig,
    protocol: Protocol,
    calendar: Calendar<Event>,
    source: S,
    words_per_block: u64,
    /// Set when a processor's stream runs dry *before* it completed its
    /// measurement window; the run aborts and reports
    /// [`SimError::InsufficientRun`]. A processor that runs dry after
    /// finishing merely parks (stops issuing) while the others catch up —
    /// finite sources with uneven drain rates are normal for file traces.
    exhausted: bool,
    rng: SmallRng,
    caches: Vec<Cache>,
    bus_queue: VecDeque<BusJob>,
    bus_busy: bool,
    completed: Vec<usize>,
    warm_at: Vec<Option<f64>>,
    done_at: Vec<Option<f64>>,
    meas_start: Option<f64>,
    bus_busy_time: f64,
    hits: usize,
    misses: usize,
    cache_supplied: usize,
    bus_ops: usize,
    /// (hits, total) per stream: [private, sro, sw].
    stream_hits: [(usize, usize); 3],
    invalidations: usize,
    counters: ParameterCounters,
    /// Per-block consecutive useless broadcasts (adaptive RWB policy).
    useless_broadcasts: std::collections::HashMap<u64, u8>,
}

impl<S: TraceSource> TraceMachine<S> {
    fn new(config: TraceDriveConfig, source: S) -> Self {
        let n = config.n;
        TraceMachine {
            protocol: Protocol::new(config.mods),
            words_per_block: source.words_per_block().max(1),
            source,
            exhausted: false,
            rng: SmallRng::seed_from_u64(config.seed ^ 0xdead_beef),
            config,
            calendar: Calendar::new(),
            caches: (0..n).map(|_| Cache::new(config.sets, config.ways)).collect(),
            bus_queue: VecDeque::new(),
            bus_busy: false,
            completed: vec![0; n],
            warm_at: vec![None; n],
            done_at: vec![None; n],
            meas_start: None,
            bus_busy_time: 0.0,
            hits: 0,
            misses: 0,
            cache_supplied: 0,
            bus_ops: 0,
            stream_hits: [(0, 0); 3],
            invalidations: 0,
            counters: ParameterCounters::default(),
            useless_broadcasts: std::collections::HashMap::new(),
        }
    }

    fn think(&mut self) -> f64 {
        let u: f64 = self.rng.random();
        -self.config.tau * (1.0 - u).ln()
    }

    fn run(&mut self) -> Result<TraceSimMeasures, SimError> {
        for p in 0..self.config.n {
            let t = self.think();
            self.calendar.schedule(t, Event::Issue(p));
        }
        while let Some((now, event)) = self.calendar.next() {
            match event {
                Event::Issue(p) => self.issue(now, p),
                Event::BusRelease => self.release_bus(now),
            }
            // A source that ran dry mid-window makes completion impossible —
            // abort rather than let the surviving processors spin forever.
            if self.done_at.iter().all(Option::is_some) || self.exhausted {
                break;
            }
        }
        self.finish()
    }

    fn shared_line(&self, block: u64, except: usize) -> bool {
        self.caches
            .iter()
            .enumerate()
            .any(|(q, c)| q != except && c.state(block).is_valid())
    }

    fn issue(&mut self, now: f64, p: usize) {
        let Some(TraceRecord { address, is_write, stream, .. }) = self.source.next_for(p)
        else {
            // Done processors park silently; an unfinished one dooms the run.
            if self.done_at[p].is_none() {
                self.exhausted = true;
            }
            return;
        };
        let block = address / self.words_per_block;
        let state = self.caches[p].state(block);
        let ctx = MissContext { shared_line: self.shared_line(block, p) };
        let transition = if is_write {
            self.protocol.processor_write(state, ctx)
        } else {
            self.protocol.processor_read(state, ctx)
        };

        let measuring =
            self.meas_start.is_some() || self.completed[p] >= self.config.warmup_references;
        if measuring {
            if transition.hit {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
            let stream_idx = stream_index(stream);
            self.stream_hits[stream_idx].1 += 1;
            if transition.hit {
                self.stream_hits[stream_idx].0 += 1;
            }
            // Parameter-measurement counters (reference-side).
            self.counters.refs[stream_idx] += 1;
            if !is_write {
                self.counters.reads[stream_idx] += 1;
            }
            if transition.hit {
                self.counters.hits[stream_idx] += 1;
                if is_write {
                    self.counters.write_hits[stream_idx] += 1;
                    if state.is_dirty() {
                        self.counters.write_hits_modified[stream_idx] += 1;
                    }
                }
            } else {
                self.counters.misses[stream_idx] += 1;
            }
        }

        match transition.bus_op {
            None => {
                self.caches[p].set_state(block, transition.next_state);
                let done = now + self.config.timing.t_supply;
                self.complete(done, p);
            }
            Some(op) => {
                // For a hit the state change applies when the bus op
                // completes; for a miss the fill (and any victim
                // write-back) is resolved at dispatch time.
                self.bus_queue.push_back(BusJob { proc: p, op, block, is_write, stream });
                if !self.bus_busy {
                    self.dispatch(now);
                }
            }
        }
    }

    fn dispatch(&mut self, now: f64) {
        let Some(job) = self.bus_queue.pop_front() else {
            return;
        };
        self.bus_busy = true;
        self.bus_ops += 1;
        let timing = self.config.timing;
        let p = job.proc;

        // Adaptive RWB policy: a broadcast for a block whose recent
        // broadcasts found no other holders is demoted to an invalidation
        // (which, with nobody holding a copy, silently regains
        // exclusivity for the writer).
        let mut op = job.op;
        let mut adaptive_invalidate = false;
        if op == BusOp::WriteWord {
            if let UpdatePolicy::Adaptive { useless_limit } = self.config.update_policy {
                let useless =
                    self.useless_broadcasts.get(&job.block).copied().unwrap_or(0);
                if useless >= useless_limit {
                    op = BusOp::Invalidate;
                    adaptive_invalidate = true;
                }
            }
        }

        // Snoop every other cache; gather shared line / supplier / memory
        // write-back facts from the actual states.
        let mut any_shared = false;
        let mut supplier_writes_memory = false;
        let mut supplied = false;
        let mut supplier_was_dirty = false;
        for q in 0..self.config.n {
            if q == p {
                continue;
            }
            let state = self.caches[q].state(job.block);
            if state == CacheState::Invalid {
                continue;
            }
            let response = self.protocol.snoop(state, op);
            if self.meas_start.is_some()
                && state.is_valid()
                && response.next_state == CacheState::Invalid
            {
                self.invalidations += 1;
            }
            if response.raises_shared {
                any_shared = true;
            }
            if response.can_supply && !supplied && op.requests_data() {
                supplied = true;
                supplier_writes_memory = response.writes_memory;
                supplier_was_dirty = state.is_dirty();
            }
            self.caches[q].set_state(job.block, response.next_state);
        }

        // Maintain the adaptive policy's per-block usefulness counter.
        if matches!(self.config.update_policy, UpdatePolicy::Adaptive { .. }) {
            match op {
                BusOp::WriteWord => {
                    if any_shared {
                        self.useless_broadcasts.remove(&job.block);
                    } else {
                        let c = self.useless_broadcasts.entry(job.block).or_insert(0);
                        *c = c.saturating_add(1);
                    }
                }
                // A new reader makes broadcasts potentially useful again.
                BusOp::Read | BusOp::ReadMod => {
                    self.useless_broadcasts.remove(&job.block);
                }
                _ => {}
            }
        }

        // Duration of the transaction.
        let mut duration = match op {
            BusOp::WriteWord | BusOp::Invalidate => timing.t_write,
            BusOp::WriteBlock => timing.writeback_cycles(),
            BusOp::Read | BusOp::ReadMod => {
                if supplied {
                    timing.cache_read_cycles()
                } else {
                    timing.memory_read_cycles()
                }
            }
        };
        if supplier_writes_memory {
            duration += timing.writeback_cycles();
        }

        // Apply the requester's own state change / fill.
        let resident = self.caches[p].state(job.block).is_valid();
        if op.requests_data() && !resident {
            if self.meas_start.is_some() && supplied {
                self.cache_supplied += 1;
            }
            let ctx = MissContext { shared_line: any_shared };
            let fill = self.protocol.fill_state(op, ctx);
            let dirty_victim = self.caches[p].fill(job.block, fill).is_some();
            if self.meas_start.is_some() {
                let stream_idx = stream_index(job.stream);
                self.counters.fills[stream_idx] += 1;
                if dirty_victim {
                    self.counters.fills_dirty_victim[stream_idx] += 1;
                }
                if supplied {
                    self.counters.misses_supplied[stream_idx] += 1;
                    if supplier_was_dirty {
                        self.counters.misses_supplied_dirty[stream_idx] += 1;
                    }
                }
            }
            if dirty_victim {
                // Dirty victim rides the same transaction as a write-back.
                duration += timing.writeback_cycles();
            }
            // A modification-4 write miss that found copies broadcasts the
            // written word right after the fill.
            if job.is_write && self.protocol.write_miss_broadcasts(ctx) {
                duration += timing.t_write;
                for q in 0..self.config.n {
                    if q != p {
                        let s = self.caches[q].state(job.block);
                        if s.is_valid() {
                            let r = self.protocol.snoop(s, BusOp::WriteWord);
                            self.caches[q].set_state(job.block, r.next_state);
                        }
                    }
                }
            }
        } else if resident {
            if adaptive_invalidate {
                // The broadcast was demoted to an invalidation: the writer
                // regains an exclusive, modified copy.
                self.caches[p].set_state(job.block, CacheState::ExclusiveDirty);
            } else {
                // Consistency announcement: recompute the transition now
                // that the bus op is performed (states may have moved since
                // issue, e.g. an intervening invalidation — re-resolve
                // honestly).
                let state = self.caches[p].state(job.block);
                let ctx = MissContext { shared_line: any_shared };
                let transition = if job.is_write {
                    self.protocol.processor_write(state, ctx)
                } else {
                    self.protocol.processor_read(state, ctx)
                };
                self.caches[p].set_state(job.block, transition.next_state);
            }
        } else {
            // The block was invalidated between issue and grant and this
            // was an announcement op; fall back to a fresh fill.
            let ctx = MissContext { shared_line: any_shared };
            let fill = self.protocol.fill_state(
                if job.is_write { BusOp::ReadMod } else { BusOp::Read },
                ctx,
            );
            duration += timing.memory_read_cycles() - timing.t_write.min(duration);
            if self.caches[p].fill(job.block, fill).is_some() {
                duration += timing.writeback_cycles();
            }
        }

        let release = now + duration.max(timing.t_write);
        if self.meas_start.is_some() {
            self.bus_busy_time += release - now;
        }
        self.calendar.schedule(release, Event::BusRelease);
        self.complete(release + timing.t_supply, p);
    }

    fn release_bus(&mut self, now: f64) {
        self.bus_busy = false;
        if !self.bus_queue.is_empty() {
            self.dispatch(now);
        }
    }

    fn complete(&mut self, done: f64, p: usize) {
        self.completed[p] += 1;
        if self.completed[p] == self.config.warmup_references {
            self.warm_at[p] = Some(done);
            if self.warm_at.iter().all(Option::is_some) {
                self.meas_start = Some(done);
            }
        }
        if self.completed[p]
            == self.config.warmup_references + self.config.measured_references
            && self.done_at[p].is_none()
        {
            self.done_at[p] = Some(done);
        }
        let think = self.think();
        self.calendar.schedule(done + think, Event::Issue(p));
    }

    fn finish(&self) -> Result<TraceSimMeasures, SimError> {
        if self.warm_at.iter().any(Option::is_none) || self.done_at.iter().any(Option::is_none)
        {
            return Err(SimError::InsufficientRun {
                warmup: self.config.warmup_references,
                measured: self.config.measured_references,
                progress: self.completed.clone(),
            });
        }
        let cycle = self.config.tau + self.config.timing.t_supply;
        let mut speedup = 0.0;
        let mut inv_r = 0.0;
        for p in 0..self.config.n {
            let start = self.warm_at[p].expect("warmed");
            let end = self.done_at[p].expect("measured");
            let r = (end - start) / self.config.measured_references as f64;
            speedup += cycle / r;
            inv_r += 1.0 / r;
        }
        let t0 = self.meas_start.unwrap_or(0.0);
        let t1 = self.done_at.iter().map(|d| d.unwrap()).fold(0.0_f64, f64::max);
        let window = (t1 - t0).max(1e-9);
        let total_refs = (self.hits + self.misses).max(1);

        let stream_rate = |idx: usize| {
            let (h, t) = self.stream_hits[idx];
            if t > 0 {
                h as f64 / t as f64
            } else {
                0.0
            }
        };
        Ok(TraceSimMeasures {
            n: self.config.n,
            r: self.config.n as f64 / inv_r,
            speedup,
            bus_utilization: (self.bus_busy_time / window).min(1.0),
            hit_rate: self.hits as f64 / total_refs as f64,
            cache_supply_rate: if self.misses > 0 {
                self.cache_supplied as f64 / self.misses as f64
            } else {
                0.0
            },
            bus_ops_per_reference: self.bus_ops as f64 / total_refs as f64,
            hit_rate_private: stream_rate(0),
            hit_rate_sro: stream_rate(1),
            hit_rate_sw: stream_rate(2),
            invalidations_per_reference: self.invalidations as f64 / total_refs as f64,
        })
    }
}

fn stream_index(stream: Stream) -> usize {
    match stream {
        Stream::Private => 0,
        Stream::SharedReadOnly => 1,
        Stream::SharedWritable => 2,
    }
}

fn check_source<S: TraceSource>(config: &TraceDriveConfig, source: &S) -> Result<(), SimError> {
    config.validate()?;
    if source.processors() != config.n {
        return Err(SimError::InvalidConfig(format!(
            "source has {} processors but the configuration asks for {}",
            source.processors(),
            config.n
        )));
    }
    Ok(())
}

/// Runs one trace-driven simulation over any [`TraceSource`].
///
/// # Errors
///
/// Configuration validation failures, a processor-count mismatch between
/// `config` and `source`, or [`SimError::InsufficientRun`] when a finite
/// source runs dry before every processor completes its warm-up and
/// measurement windows.
pub fn simulate_trace_source<S: TraceSource>(
    config: &TraceDriveConfig,
    source: S,
) -> Result<TraceSimMeasures, SimError> {
    check_source(config, &source)?;
    TraceMachine::new(*config, source).run()
}

/// Runs one trace-driven simulation over any [`TraceSource`] and also
/// *measures* the workload parameters from the observed behaviour (the
/// paper's closing "workload measurement studies" — see
/// [`snoop_workload::measure`]).
///
/// # Errors
///
/// As [`simulate_trace_source`], plus workload validation of the measured
/// parameters.
pub fn simulate_trace_source_measuring<S: TraceSource>(
    config: &TraceDriveConfig,
    source: S,
) -> Result<(TraceSimMeasures, WorkloadParams), SimError> {
    check_source(config, &source)?;
    let mut machine = TraceMachine::new(*config, source);
    let measures = machine.run()?;
    let params = machine.counters.estimate(config.tau);
    params.validate().map_err(SimError::Workload)?;
    Ok((measures, params))
}

/// Runs one trace-driven simulation over the synthetic generator described
/// by a legacy [`TraceSimConfig`].
///
/// # Errors
///
/// Propagates configuration validation failures.
#[deprecated(
    since = "0.2.0",
    note = "use `simulate_trace_source(&config.drive_config(), config.generator()?)`, \
            which accepts any `TraceSource`"
)]
pub fn simulate_trace(config: &TraceSimConfig) -> Result<TraceSimMeasures, SimError> {
    config.validate()?;
    simulate_trace_source(&config.drive_config(), config.generator()?)
}

/// Runs one trace-driven simulation and also *measures* the workload
/// parameters from the observed behaviour.
///
/// # Errors
///
/// Propagates configuration validation failures.
#[deprecated(
    since = "0.2.0",
    note = "use `simulate_trace_source_measuring(&config.drive_config(), \
            config.generator()?)`, which accepts any `TraceSource`"
)]
pub fn simulate_trace_measuring(
    config: &TraceSimConfig,
) -> Result<(TraceSimMeasures, WorkloadParams), SimError> {
    config.validate()?;
    simulate_trace_source_measuring(&config.drive_config(), config.generator()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: usize, mods: &[u8]) -> TraceSimConfig {
        let mut c = TraceSimConfig::new(n, ModSet::from_numbers(mods).unwrap());
        c.warmup_references = 2_000;
        c.measured_references = 8_000;
        c
    }

    /// Runs a legacy configuration through the `TraceSource` path.
    fn run_cfg(c: &TraceSimConfig) -> Result<TraceSimMeasures, SimError> {
        simulate_trace_source(&c.drive_config(), c.generator()?)
    }

    /// A finite source replaying a fixed record list, round-robin.
    struct VecSource {
        records: Vec<TraceRecord>,
        cursor: Vec<usize>,
        n: usize,
    }

    impl VecSource {
        fn new(n: usize, records: Vec<TraceRecord>) -> Self {
            VecSource { records, cursor: vec![0; n], n }
        }
    }

    impl TraceSource for VecSource {
        fn processors(&self) -> usize {
            self.n
        }

        fn words_per_block(&self) -> u64 {
            4
        }

        fn next_for(&mut self, processor: usize) -> Option<TraceRecord> {
            let skip = self.cursor[processor];
            let found = self
                .records
                .iter()
                .filter(|r| r.processor == processor)
                .nth(skip)
                .copied()?;
            self.cursor[processor] += 1;
            Some(found)
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_entry_points_match_the_trace_source_path() {
        // The acceptance bar for the redesign: the old synthetic path must
        // stay bit-identical. Both shims delegate, so old == new exactly.
        let cfg = quick(3, &[1]);
        let old = simulate_trace(&cfg).unwrap();
        let new = run_cfg(&cfg).unwrap();
        assert_eq!(old, new);

        let (old_m, old_p) = simulate_trace_measuring(&cfg).unwrap();
        let (new_m, new_p) =
            simulate_trace_source_measuring(&cfg.drive_config(), cfg.generator().unwrap())
                .unwrap();
        assert_eq!(old_m, new_m);
        assert_eq!(format!("{old_p:?}"), format!("{new_p:?}"));
    }

    #[test]
    fn exhausted_source_reports_insufficient_run() {
        // Two processors, but far fewer records than warmup + measured:
        // the run must abort with per-processor progress, not hang or
        // panic.
        let records: Vec<TraceRecord> = (0..40)
            .map(|i| TraceRecord {
                processor: i % 2,
                address: (i as u64) * 8,
                is_write: i % 5 == 0,
                stream: Stream::Private,
            })
            .collect();
        let mut config = TraceDriveConfig::new(2, ModSet::new());
        config.warmup_references = 10;
        config.measured_references = 100;
        let err = simulate_trace_source(&config, VecSource::new(2, records)).unwrap_err();
        let SimError::InsufficientRun { warmup, measured, progress } = err else {
            panic!("expected InsufficientRun, got {err:?}");
        };
        assert_eq!((warmup, measured), (10, 100));
        assert_eq!(progress.len(), 2);
        assert!(progress.iter().all(|&c| c <= 20), "{progress:?}");
    }

    #[test]
    fn source_processor_mismatch_is_rejected() {
        let config = TraceDriveConfig::new(4, ModSet::new());
        let records = vec![TraceRecord {
            processor: 0,
            address: 0,
            is_write: false,
            stream: Stream::Private,
        }];
        let err = simulate_trace_source(&config, VecSource::new(2, records)).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn per_stream_hit_rates_are_ordered_sensibly() {
        // Private and sro reuse is high; sw blocks get invalidated by other
        // writers, so their emergent hit rate is the lowest — the ordering
        // the Appendix-A parameters encode (0.95/0.95/0.5).
        let m = run_cfg(&quick(4, &[])).unwrap();
        assert!(m.hit_rate_private > 0.8, "private {}", m.hit_rate_private);
        assert!(m.hit_rate_sro > 0.8, "sro {}", m.hit_rate_sro);
        assert!(
            m.hit_rate_sw < m.hit_rate_private,
            "sw {} vs private {}",
            m.hit_rate_sw,
            m.hit_rate_private
        );
    }

    #[test]
    fn update_protocol_raises_sw_hit_rate() {
        // Modification 4's whole premise (the h_sw 0.5 → 0.95 adjustment):
        // copies stop being invalidated, so the sw hit rate climbs. The
        // trace simulator shows the mechanism emergently.
        let inv = run_cfg(&quick(4, &[1])).unwrap();
        let upd = run_cfg(&quick(4, &[1, 4])).unwrap();
        assert!(
            upd.hit_rate_sw > inv.hit_rate_sw,
            "update {} vs invalidate {}",
            upd.hit_rate_sw,
            inv.hit_rate_sw
        );
        assert!(upd.invalidations_per_reference < inv.invalidations_per_reference);
    }

    #[test]
    fn hit_rate_emerges_near_parameters() {
        // The trace generator's locality targets the Appendix-A hit rates;
        // with a roomy cache the emergent hit rate should be in the same
        // neighbourhood (weighted ≈ 0.94 at the 5% mix).
        let m = run_cfg(&quick(2, &[])).unwrap();
        assert!(m.hit_rate > 0.85 && m.hit_rate < 0.99, "hit rate {}", m.hit_rate);
    }

    #[test]
    fn speedup_scales() {
        let s1 = run_cfg(&quick(1, &[])).unwrap().speedup;
        let s4 = run_cfg(&quick(4, &[])).unwrap().speedup;
        assert!(s1 > 0.6 && s1 <= 1.0, "s1 = {s1}");
        assert!(s4 > 2.0 * s1, "s1 = {s1}, s4 = {s4}");
    }

    #[test]
    fn mod1_reduces_bus_ops() {
        // Modification 1's whole point: private write hits stop
        // broadcasting.
        let wo = run_cfg(&quick(4, &[])).unwrap();
        let m1 = run_cfg(&quick(4, &[1])).unwrap();
        assert!(
            m1.bus_ops_per_reference < wo.bus_ops_per_reference,
            "{} vs {}",
            m1.bus_ops_per_reference,
            wo.bus_ops_per_reference
        );
        assert!(m1.speedup > wo.speedup);
    }

    #[test]
    fn coherence_invariants_hold_under_simulation() {
        // Run a small hot configuration and verify the cross-cache
        // invariants on every shared block afterwards.
        let mut c = quick(3, &[2, 3]);
        c.trace.sw_blocks = 16;
        c.trace.sro_blocks = 16;
        c.warmup_references = 500;
        c.measured_references = 4_000;
        c.validate().unwrap();
        let mut machine = TraceMachine::new(c.drive_config(), c.generator().unwrap());
        let measures = machine.run().unwrap();
        assert!(measures.speedup > 0.0);
        // Check invariants over the sw region blocks.
        let wpb = c.trace.words_per_block;
        for block_idx in 0..c.trace.sw_blocks {
            let addr = machine.source.address_map().sw_address(block_idx, 0);
            let block = addr / wpb;
            let states: Vec<CacheState> =
                machine.caches.iter().map(|cache| cache.state(block)).collect();
            assert!(
                snoop_protocol::invariants::is_coherent(&states, c.mods),
                "block {block}: {states:?}"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run_cfg(&quick(2, &[])).unwrap();
        let b = run_cfg(&quick(2, &[])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_policy_cuts_useless_broadcasts() {
        // A mostly-private workload under an update protocol: most
        // broadcasts find no other holder, so the adaptive policy should
        // reduce bus operations without hurting speedup.
        let mut base = quick(4, &[1, 4]);
        base.params = WorkloadParams::builder()
            .streams(0.99, 0.005, 0.005)
            .build()
            .unwrap();
        let always = run_cfg(&base).unwrap();
        let mut adaptive_cfg = base;
        adaptive_cfg.update_policy = UpdatePolicy::Adaptive { useless_limit: 2 };
        let adaptive = run_cfg(&adaptive_cfg).unwrap();
        assert!(
            adaptive.bus_ops_per_reference <= always.bus_ops_per_reference,
            "adaptive {} vs always {}",
            adaptive.bus_ops_per_reference,
            always.bus_ops_per_reference
        );
        assert!(adaptive.speedup >= always.speedup * 0.98);
    }

    #[test]
    fn adaptive_policy_is_neutral_without_mod4() {
        let base = quick(3, &[]);
        let a = run_cfg(&base).unwrap();
        let mut cfg = base;
        cfg.update_policy = UpdatePolicy::Adaptive { useless_limit: 1 };
        let b = run_cfg(&cfg).unwrap();
        // No WriteWord broadcasts survive to be demoted under heavy-sharing
        // Write-Once? They do exist (write-through), but private broadcasts
        // finding no holders get demoted to invalidations of nobody — the
        // measures stay statistically close either way.
        assert!((a.speedup - b.speedup).abs() / a.speedup < 0.05);
    }

    #[test]
    fn adaptive_system_stays_coherent() {
        let mut cfg = quick(3, &[1, 4]);
        cfg.update_policy = UpdatePolicy::Adaptive { useless_limit: 1 };
        cfg.trace.sw_blocks = 16;
        let mut machine = TraceMachine::new(cfg.drive_config(), cfg.generator().unwrap());
        machine.run().unwrap();
        let wpb = cfg.trace.words_per_block;
        for block_idx in 0..cfg.trace.sw_blocks {
            let addr = machine.source.address_map().sw_address(block_idx, 0);
            let block = addr / wpb;
            let states: Vec<CacheState> =
                machine.caches.iter().map(|c| c.state(block)).collect();
            assert!(
                snoop_protocol::invariants::is_coherent(&states, cfg.mods),
                "block {block}: {states:?}"
            );
        }
    }

    #[test]
    fn validation_catches_mismatched_processors() {
        let mut c = quick(2, &[]);
        c.trace.processors = 3;
        assert!(run_cfg(&c).is_err());
    }

    #[test]
    fn small_cache_lowers_hit_rate() {
        let big = run_cfg(&quick(2, &[])).unwrap();
        let mut small_cfg = quick(2, &[]);
        small_cfg.sets = 8;
        small_cfg.ways = 1;
        let small = run_cfg(&small_cfg).unwrap();
        assert!(small.hit_rate < big.hit_rate, "{} vs {}", small.hit_rate, big.hit_rate);
        assert!(small.speedup < big.speedup);
    }
}
