use std::fmt;

use snoop_workload::WorkloadError;

/// Error type of the simulator crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid workload parameters or timing model.
    Workload(WorkloadError),
    /// Invalid simulation configuration.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Workload(e) => write!(f, "workload error: {e}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Workload(e) => Some(e),
            SimError::InvalidConfig(_) => None,
        }
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SimError::InvalidConfig("x".into()).to_string().contains("x"));
        let e = SimError::from(WorkloadError::InvalidParameter { name: "tau", value: -1.0 });
        assert!(e.to_string().contains("tau"));
    }
}
