use std::fmt;

use snoop_workload::WorkloadError;

/// Error type of the simulator crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid workload parameters or timing model.
    Workload(WorkloadError),
    /// Invalid simulation configuration.
    InvalidConfig(String),
    /// The run ended before every processor finished its warm-up and
    /// measurement windows, so no measures can be reported.
    InsufficientRun {
        /// Warm-up references each processor must complete before
        /// measurement starts.
        warmup: usize,
        /// Measured references each processor must then complete.
        measured: usize,
        /// References each processor had completed when the run ended.
        progress: Vec<usize>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Workload(e) => write!(f, "workload error: {e}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::InsufficientRun { warmup, measured, progress } => write!(
                f,
                "run too short: every processor needs {warmup} warm-up + {measured} \
                 measured references, per-processor progress {progress:?}"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Workload(e) => Some(e),
            SimError::InvalidConfig(_) | SimError::InsufficientRun { .. } => None,
        }
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SimError::InvalidConfig("x".into()).to_string().contains("x"));
        let e = SimError::from(WorkloadError::InvalidParameter { name: "tau", value: -1.0 });
        assert!(e.to_string().contains("tau"));
        let e = SimError::InsufficientRun { warmup: 0, measured: 1, progress: vec![1, 0] };
        let text = e.to_string();
        assert!(text.contains("0 warm-up"), "{text}");
        assert!(text.contains("[1, 0]"), "{text}");
    }
}
