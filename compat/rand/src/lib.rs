//! Workspace-local stand-in for the subset of the `rand` crate used by this
//! repository.
//!
//! The build environments this project targets are frequently offline or
//! vendored, where fetching crates.io dependencies is impossible. Rather
//! than making the simulator and workload generators unbuildable there,
//! this crate provides the handful of `rand` items the workspace actually
//! uses — [`Rng`], [`RngExt`], [`SeedableRng`] and [`rngs::SmallRng`] —
//! with the same names and signatures, so swapping the real crate back in
//! is a one-line `Cargo.toml` change.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! platforms — so statistical quality is equivalent, though exact streams
//! differ from upstream `rand` and from other versions of this shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from the "standard" distribution of a type: uniform over
/// `[0, 1)` for floats, uniform over the full range for integers.
pub trait StandardDistribution: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistribution for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDistribution for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardDistribution for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistribution for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDistribution for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching the real `rand`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply rejection-free mapping; the bias is
                // < 2^-64 per draw, far below anything a test can see.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128) - (start as u128) + 1;
                let x = rng.next_u64() as u128;
                start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardDistribution::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws from the standard distribution of `T`.
    fn random<T: StandardDistribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let u: f64 = StandardDistribution::sample(self);
        u < p
    }

    /// Draws uniformly from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn ranges_cover_endpoints_correctly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(2u8..=4);
            assert!((2..=4).contains(&v));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}
