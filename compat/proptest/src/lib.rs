//! Workspace-local stand-in for the subset of the `proptest` API used by
//! this repository.
//!
//! Offline and vendored build environments cannot fetch crates.io
//! dependencies, and property tests are far too valuable to drop. This
//! crate implements the slice of `proptest` the workspace's tests use —
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, range and tuple strategies, `prop::collection::vec`,
//! [`ProptestConfig`], and the `prop_assert*` / `prop_assume!` macros —
//! with compatible names and semantics, so swapping the real crate back in
//! is a one-line `Cargo.toml` change.
//!
//! Differences from the real crate (acceptable for this repository's use):
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (which are reproducible — the RNG seed is derived from the test
//!   name), but no minimization pass runs.
//! * **No persistence.** `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test runs.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases with default reject limits.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, max_global_rejects: cases.saturating_mul(16).max(1024) }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An explicit `prop_assert*!` failed; carries the rendered message.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs.
    Reject,
}

pub mod test_runner {
    //! The driver loop behind the [`proptest!`](crate::proptest) macro.

    use super::{ProptestConfig, TestCaseError};

    /// Deterministic 64-bit generator (xoshiro256++ seeded by SplitMix64)
    /// used to produce test cases. Seeds derive from the test name so runs
    /// are reproducible without any persistence files.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator from an arbitrary seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    fn seed_for(name: &str) -> u64 {
        // FNV-1a, stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }

    /// Runs `case` until `config.cases` cases are accepted, panicking on
    /// the first failure. `case` receives the RNG and returns the rendered
    /// description of the generated inputs alongside the case outcome.
    pub fn run<F>(config: &ProptestConfig, name: &str, case: F)
    where
        F: Fn(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let mut rng = TestRng::seed_from_u64(seed_for(name));
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < config.cases {
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest {name}: too many prop_assume! rejections \
                             ({rejected}) after {accepted} accepted cases"
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest {name}: case #{n} failed: {message}\n\
                         inputs:\n{inputs}",
                        n = accepted + 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`, re-drawing otherwise.
        /// Gives up (panicking) after 1 000 consecutive misses.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, pred, whence }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let candidate = self.inner.generate(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter({}) rejected 1000 consecutive draws", self.whence);
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty : $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as $wide - self.start as $wide) as u64;
                    (self.start as $wide + rng.below(span) as $wide) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span128 = hi as $wide as i128 - lo as $wide as i128 + 1;
                    if span128 > u64::MAX as i128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide + rng.below(span128 as u64) as $wide) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8: i64, i16: i64, i32: i64, i64: i128);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            // Include the upper endpoint by widening one ULP-scale step:
            // draw in [0, 1] using a 53-bit grid that reaches 1.0.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            lo + unit * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` works after importing the
/// prelude, as with the real crate.
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    //! The glob-importable prelude, mirroring `proptest::prelude`.

    pub use super::prop;
    pub use super::strategy::{Just, Strategy};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the generated inputs echoed) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (without counting it as run) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    s
                };
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (inputs, outcome)
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u8..7, y in 1usize..=4, z in -2.0f64..2.0) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z), "z = {z}");
        }

        /// Tuples, maps and vec compose.
        #[test]
        fn composition_works(
            v in prop::collection::vec((0u8..4, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b), 2..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for x in &v {
                prop_assert!((0.0..4.0).contains(x));
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failing_property_panics_with_inputs() {
        let config = ProptestConfig::with_cases(8);
        crate::test_runner::run(&config, "always_fails", |rng| {
            let n = crate::strategy::Strategy::generate(&(0u32..10), rng);
            let inputs = format!("  n = {n:?}\n");
            let outcome = (|| {
                crate::prop_assert!(n > 100, "n was {n}");
                Ok(())
            })();
            (inputs, outcome)
        });
    }

    #[test]
    fn inclusive_f64_reaches_whole_interval() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::seed_from_u64(9);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99, "min {min} max {max}");
    }
}
