//! Workspace-local stand-in for the subset of the `criterion` API used by
//! this repository's benches.
//!
//! Offline and vendored build environments cannot fetch crates.io
//! dependencies. This crate keeps the bench sources compiling and runnable
//! there: it implements [`Criterion`], [`BenchmarkId`], benchmark groups,
//! `criterion_group!` / `criterion_main!` and a simple wall-clock
//! measurement loop that prints a mean per-iteration time. It performs no
//! statistical analysis, produces no reports, and is **not** a substitute
//! for the real Criterion when numbers matter — swap the real crate back
//! in via `Cargo.toml` for publishable measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for API compatibility.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let rendered = name.into_id();
        run_one(self, &rendered, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Sets the warm-up budget for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let rendered = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion, &rendered, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let rendered = format!("{}/{}", self.name, id);
        run_one(self.criterion, &rendered, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, name: &str, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // measuring a rough per-iteration cost to size the real batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher { iterations: 1, elapsed: Duration::ZERO };
    while warm_start.elapsed() < criterion.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

    // Size each sample so the whole measurement roughly fits the budget.
    let samples = criterion.sample_size.max(1) as u64;
    let budget = criterion.measurement_time.as_secs_f64();
    let iters_per_sample =
        ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 10_000_000);

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut bencher = Bencher { iterations: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut bencher);
        total += bencher.elapsed;
        let per = bencher.elapsed / u32::try_from(iters_per_sample).unwrap_or(u32::MAX);
        if per < best {
            best = per;
        }
    }
    let mean = total.as_secs_f64() / (samples * iters_per_sample) as f64;
    println!(
        "bench {name:<50} mean {:>12.3} µs   best {:>12.3} µs   ({} samples × {} iters)",
        mean * 1e6,
        best.as_secs_f64() * 1e6,
        samples,
        iters_per_sample
    );
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u64;
        quick().bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_compose_and_finish() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2).measurement_time(Duration::from_millis(2));
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
