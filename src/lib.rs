//! # snoop — mean-value analysis of snooping cache-consistency protocols
//!
//! Facade crate for a reproduction of Vernon, Lazowska & Zahorjan,
//! *"An Accurate and Efficient Performance Analysis Technique for
//! Multiprocessor Snooping Cache-Consistency Protocols"* (ISCA 1988).
//!
//! Each subsystem is re-exported under a short module name:
//!
//! * [`engine`] — the unified evaluation engine: [`engine::Scenario`]
//!   descriptions, the [`engine::Evaluator`] backends over MVA /
//!   simulation / GTPN, and the batching, caching [`engine::Engine`];
//! * [`mva`] — the paper's customized mean-value model (equations,
//!   solver, asymptotics, sweeps, the published Table 4.1 data, and the
//!   multiclass / hierarchical extensions);
//! * [`protocol`] — Write-Once and its four modifications as executable
//!   state machines, coherence invariants, scenario DSL;
//! * [`workload`] — the three-substream workload model: parameters,
//!   derived MVA inputs, reference/trace generators, parameter files;
//! * [`gtpn`] — the Generalized Timed Petri Net engine (detailed
//!   comparator #1);
//! * [`sim`] — the discrete-event simulator (detailed comparator #2), in
//!   probabilistic and trace-driven modes, plus workload measurement;
//! * [`numeric`] — fixed-point iteration, linear algebra, Markov chains,
//!   statistics, histograms.
//!
//! # Example
//!
//! Evaluate the Illinois protocol at 5% sharing through the engine:
//!
//! ```
//! use snoop::engine::{Engine, MvaBackend, Scenario};
//! use snoop::protocol::ModSet;
//! use snoop::workload::params::SharingLevel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = Engine::new().with_backend(MvaBackend);
//! let scenario = Scenario::appendix_a("illinois".parse::<ModSet>()?, SharingLevel::Five, 10);
//! let evals = engine.evaluate_batch_ok(&[scenario]);
//! assert!(evals[0].speedup > 5.0 && evals[0].speedup < 7.0);
//! // The same scenario evaluated again is a content-addressed cache hit.
//! assert!(engine.evaluate(&scenario)[0].result.as_ref().unwrap().provenance.cached);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the full tour, `DESIGN.md` for the system inventory
//! and reconstruction decisions, and `EXPERIMENTS.md` for paper-vs-measured
//! results of every table and figure.

#![forbid(unsafe_code)]

pub use snoop_gtpn as gtpn;
pub use snoop_mva::engine;
pub use snoop_mva as mva;
pub use snoop_numeric as numeric;
pub use snoop_protocol as protocol;
pub use snoop_sim as sim;
pub use snoop_workload as workload;
