#!/usr/bin/env python3
"""Regenerates the checked-in trace corpus. Deterministic (fixed seed):
rerunning this script must reproduce the committed files byte for byte.

Two dialects are emitted, matching `snoop_workload::ingest`:

* assignment format — one file per processor, `0 <hexaddr>` loads,
  `1 <hexaddr>` stores, `2 <cycles>` non-memory instruction cycles
  (mesi_small_p0.trace .. mesi_small_p3.trace);
* label format — a single interleaved stream of `l <hexaddr>` /
  `s <hexaddr>` lines that the reader shards round-robin across --n
  virtual processors (lab_shared.trace).

The synthetic workload follows the paper's three-substream model: each
processor mostly touches its own private blocks (with a slowly drifting
hot set, so there are capacity/replacement misses), reads a common
read-only pool, and read-writes a small shared-writable pool (so there
are invalidations and cache-to-cache supplies).

malformed.trace is NOT generated here — it is a hand-written fixture for
the parse-error regression test and must keep its exact byte layout.
"""

import random

BYTES_PER_WORD = 4
WORDS_PER_BLOCK = 4
BLOCK_BYTES = BYTES_PER_WORD * WORDS_PER_BLOCK

N = 4
RECORDS_PER_PROC = 1500
THINK_EVERY = 10  # one `2 25` line per 10 records => tau = 2.5
THINK_CYCLES = 25

# Disjoint block pools (block numbers; byte address = block * BLOCK_BYTES).
PRIVATE_POOL = 96  # per processor, base (p + 1) * 0x1000 blocks
HOT_PRIVATE = 12  # blocks kept hot at any moment
HOT_SWAP_P = 0.02  # chance a private reference retires one hot block
SRO_BASE, SRO_BLOCKS = 0x8000, 16
SW_BASE, SW_BLOCKS = 0x9000, 8

P_PRIVATE, P_SRO = 0.80, 0.15  # rest is shared-writable
W_PRIVATE, W_SW = 0.25, 0.40  # write fractions (sro is read-only)


def make_streams(rng):
    """One list of (is_write, byte_address) per processor."""
    hot = [rng.sample(range(PRIVATE_POOL), HOT_PRIVATE) for _ in range(N)]
    streams = [[] for _ in range(N)]
    for p in range(N):
        for _ in range(RECORDS_PER_PROC):
            r = rng.random()
            if r < P_PRIVATE:
                if rng.random() < HOT_SWAP_P:
                    hot[p][rng.randrange(HOT_PRIVATE)] = rng.randrange(PRIVATE_POOL)
                block = (p + 1) * 0x1000 + rng.choice(hot[p])
                is_write = rng.random() < W_PRIVATE
            elif r < P_PRIVATE + P_SRO:
                block = SRO_BASE + rng.randrange(SRO_BLOCKS)
                is_write = False
            else:
                block = SW_BASE + rng.randrange(SW_BLOCKS)
                is_write = rng.random() < W_SW
            word = rng.randrange(WORDS_PER_BLOCK)
            address = block * BLOCK_BYTES + word * BYTES_PER_WORD
            streams[p].append((is_write, address))
    return streams


def write_assignment(streams):
    for p, stream in enumerate(streams):
        lines = [
            "# assignment-format trace (0 = load, 1 = store, 2 = think cycles)",
            f"# processor {p} of {N}, synthetic three-substream workload",
        ]
        for i, (is_write, address) in enumerate(stream):
            lines.append(f"{1 if is_write else 0} {address:x}")
            if (i + 1) % THINK_EVERY == 0:
                lines.append(f"2 {THINK_CYCLES}")
        with open(f"mesi_small_p{p}.trace", "w") as f:
            f.write("\n".join(lines) + "\n")


def write_label(streams):
    lines = [
        "# label-format trace (l = load, s = store), one stream",
        f"# shard across {N} virtual processors with: snoop calibrate --n {N}",
    ]
    # Interleave strictly round-robin so sharding recovers the exact
    # per-processor streams.
    for i in range(RECORDS_PER_PROC):
        for p in range(N):
            is_write, address = streams[p][i]
            lines.append(f"{'s' if is_write else 'l'} {address:x}")
    with open("lab_shared.trace", "w") as f:
        f.write("\n".join(lines) + "\n")


def main():
    rng = random.Random(0x5EED)
    write_assignment(make_streams(rng))
    write_label(make_streams(rng))


if __name__ == "__main__":
    main()
